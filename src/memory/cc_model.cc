#include "memory/cc_model.h"

#include <algorithm>

#include "common/check.h"
#include "common/codec.h"

namespace rmrsim {

std::string_view to_string(CcPolicy policy) {
  switch (policy) {
    case CcPolicy::kWriteThrough: return "CC/write-through";
    case CcPolicy::kWriteBack: return "CC/write-back";
    case CcPolicy::kMesi: return "CC/MESI";
    case CcPolicy::kLfcu: return "CC/LFCU";
  }
  return "CC/?";
}

std::string_view CcModel::name() const { return to_string(policy_); }

const CcModel::Line* CcModel::line(VarId v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= lines_.size()) return nullptr;
  return &lines_[static_cast<std::size_t>(v)];
}

CcModel::Line& CcModel::line_mut(VarId v) {
  ensure(v >= 0, "variable id out of range");
  if (static_cast<std::size_t>(v) >= lines_.size()) {
    lines_.resize(static_cast<std::size_t>(v) + 1);
  }
  return lines_[static_cast<std::size_t>(v)];
}

bool CcModel::contains(const std::vector<ProcId>& set, ProcId p) {
  return std::binary_search(set.begin(), set.end(), p);
}

void CcModel::insert(std::vector<ProcId>& set, ProcId p) {
  auto it = std::lower_bound(set.begin(), set.end(), p);
  if (it == set.end() || *it != p) set.insert(it, p);
}

bool CcModel::holds_copy(ProcId p, VarId v) const {
  const Line* l = line(v);
  return l != nullptr && contains(l->sharers, p);
}

bool CcModel::owns_exclusive(ProcId p, VarId v) const {
  const Line* l = line(v);
  return l != nullptr && l->owner == p;
}

bool CcModel::holds_exclusive_clean(ProcId p, VarId v) const {
  const Line* l = line(v);
  return l != nullptr && l->exclusive == p;
}

void CcModel::on_crash(ProcId p) {
  for (Line& l : lines_) {
    auto it = std::lower_bound(l.sharers.begin(), l.sharers.end(), p);
    if (it != l.sharers.end() && *it == p) l.sharers.erase(it);
    if (l.owner == p) l.owner = kNoProc;
    if (l.exclusive == p) l.exclusive = kNoProc;
  }
}

bool CcModel::read_like(ProcId p, const MemOp& op,
                        const MemoryStore& store) const {
  switch (op.type) {
    case OpType::kRead:
    case OpType::kLl:
      return true;
    case OpType::kWrite:
    case OpType::kFaa:
    case OpType::kFas:
      return false;
    case OpType::kCas:
    case OpType::kSc:
    case OpType::kTas:
      // A comparison that would not overwrite behaves read-like only under
      // LFCU (local failed comparisons); standard caches still arbitrate the
      // line for an atomic op.
      return policy_ == CcPolicy::kLfcu && !store.would_write(p, op);
  }
  fail("unknown op type");
}

bool CcModel::classify_rmr(ProcId p, const MemOp& op,
                           const MemoryStore& store) const {
  const Line* l = line(op.var);
  const bool cached = l != nullptr && contains(l->sharers, p);
  if (read_like(p, op, store)) {
    // Paper Section 2: repeated reads of a validly cached location cost one
    // RMR in total — i.e., a hit is local, a miss is the single RMR.
    return !cached;
  }
  if (policy_ == CcPolicy::kWriteBack) {
    // Writing a line held in M state is a cache hit.
    return !(l != nullptr && l->owner == p);
  }
  if (policy_ == CcPolicy::kMesi) {
    // M hit, or the silent E -> M upgrade: both local.
    return !(l != nullptr && (l->owner == p || l->exclusive == p));
  }
  // Write-through and LFCU: every overwrite engages the interconnect.
  return true;
}

void CcModel::on_applied(ProcId p, const MemOp& op, bool wrote,
                         const MemoryStore& /*store*/,
                         int* remote_copies_before) {
  Line& l = line_mut(op.var);
  int remote = 0;
  for (ProcId q : l.sharers) {
    if (q != p) ++remote;
  }
  *remote_copies_before = remote;

  if (!wrote) {
    // Read-like completion (including failed comparisons): the process now
    // holds a valid copy. Under write-back/MESI, another process's access
    // demotes a Modified owner to shared; under MESI a read miss that found
    // the line uncached anywhere takes Exclusive-clean, and any access by a
    // second process demotes the E holder.
    const bool was_cached = contains(l.sharers, p);
    insert(l.sharers, p);
    if ((policy_ == CcPolicy::kWriteBack || policy_ == CcPolicy::kMesi) &&
        l.owner != kNoProc && l.owner != p) {
      l.owner = kNoProc;
    }
    if (policy_ == CcPolicy::kMesi) {
      if (l.exclusive != kNoProc && l.exclusive != p) {
        l.exclusive = kNoProc;  // a second sharer exists now
      } else if (!was_cached && remote == 0) {
        l.exclusive = p;  // read miss, no other copies: E state
      }
    }
    return;
  }

  // Overwrite.
  switch (policy_) {
    case CcPolicy::kWriteThrough:
      // Invalidate all other copies; writer keeps a valid copy.
      l.sharers.clear();
      l.sharers.push_back(p);
      l.owner = kNoProc;
      break;
    case CcPolicy::kWriteBack:
      // Writer takes the line exclusively; all other copies invalidated.
      l.sharers.clear();
      l.sharers.push_back(p);
      l.owner = p;
      break;
    case CcPolicy::kMesi:
      // As write-back; an E holder upgrades to M (silently if it was p).
      l.sharers.clear();
      l.sharers.push_back(p);
      l.owner = p;
      l.exclusive = kNoProc;
      break;
    case CcPolicy::kLfcu:
      // Write-update: remote copies are refreshed in place and stay valid.
      insert(l.sharers, p);
      l.owner = kNoProc;
      break;
  }
}

void CcModel::save_state(std::string& out) const {
  put_u32(out, static_cast<std::uint32_t>(lines_.size()));
  for (const Line& l : lines_) {
    put_schedule(out, l.sharers);
    put_u32(out, static_cast<std::uint32_t>(l.owner));
    put_u32(out, static_cast<std::uint32_t>(l.exclusive));
  }
}

void CcModel::load_state(ByteReader& r) {
  lines_.clear();
  const std::uint32_t n = r.u32();
  lines_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Line l;
    l.sharers = r.schedule();
    l.owner = static_cast<ProcId>(r.u32());
    l.exclusive = static_cast<ProcId>(r.u32());
    lines_.push_back(std::move(l));
  }
}

}  // namespace rmrsim
