// Atomic shared-memory operations.
//
// The paper's model (Section 2) gives processes atomic reads, writes,
// Compare-And-Swap, and Load-Linked/Store-Conditional. Section 7's upper
// bounds additionally use Fetch-And-Increment / Fetch-And-Add /
// Fetch-And-Store, and Section 3 discusses Test-And-Set, so the simulator
// supports all of them. Every operation touches exactly one variable (one
// word) and is applied atomically by the simulator.
#pragma once

#include <string>

#include "common/types.h"

namespace rmrsim {

/// The atomic primitive an operation applies.
enum class OpType {
  kRead,   ///< result = value
  kWrite,  ///< value = arg0; always nontrivial (overwrites, per Section 2)
  kCas,    ///< if value == arg0 then value = arg1; result = old value
  kLl,     ///< load-linked: result = value, sets reservation for (proc, var)
  kSc,     ///< store-conditional: if reservation valid, value = arg0;
           ///< result = 1 on success else 0
  kFaa,    ///< fetch-and-add: value += arg0; result = old value
  kFas,    ///< fetch-and-store: value = arg0; result = old value
  kTas,    ///< test-and-set: value = 1; result = old value
};

/// One pending or applied operation: the primitive, its target variable, and
/// up to two operands (see OpType for each primitive's use of arg0/arg1).
struct MemOp {
  OpType type = OpType::kRead;
  VarId var = kNoVar;
  Word arg0 = 0;
  Word arg1 = 0;

  static MemOp read(VarId v) { return {OpType::kRead, v, 0, 0}; }
  static MemOp write(VarId v, Word value) { return {OpType::kWrite, v, value, 0}; }
  static MemOp cas(VarId v, Word expect, Word desired) {
    return {OpType::kCas, v, expect, desired};
  }
  static MemOp ll(VarId v) { return {OpType::kLl, v, 0, 0}; }
  static MemOp sc(VarId v, Word value) { return {OpType::kSc, v, value, 0}; }
  static MemOp faa(VarId v, Word delta) { return {OpType::kFaa, v, delta, 0}; }
  static MemOp fas(VarId v, Word value) { return {OpType::kFas, v, value, 0}; }
  static MemOp tas(VarId v) { return {OpType::kTas, v, 0, 0}; }
};

/// Result of applying a MemOp.
struct OpOutcome {
  /// Primitive-specific result (see OpType). For kWrite it is arg0.
  Word result = 0;
  /// True iff the operation was priced as a remote memory reference by the
  /// active cost model (DSM or CC).
  bool rmr = false;
  /// True iff the operation overwrote the variable (possibly with the same
  /// value) — the paper's Section 2 notion of a "nontrivial" operation.
  /// Writes, FAA, FAS and TAS always overwrite; CAS/SC only on success.
  bool nontrivial = false;
  /// Process that had last written the variable *before* this operation, or
  /// kNoProc. Feeds the history's `sees` relation (Definition 6.4).
  ProcId prev_writer = kNoProc;
};

/// True for operations whose result reveals the variable's value (everything
/// except a plain write). Used by the history's `sees` analysis.
constexpr bool reads_value(OpType t) { return t != OpType::kWrite; }

/// True for comparison-class primitives (CAS, SC, TAS) — the ops whose failed
/// applications an LFCU cache (Section 3, [1]) services locally.
constexpr bool is_comparison(OpType t) {
  return t == OpType::kCas || t == OpType::kSc || t == OpType::kTas;
}

/// How an *applied* operation acted on its variable, for the model checker's
/// independence relation: two ops on the same variable commute iff both are
/// kObserve. Classification is dynamic (per outcome), which is what makes it
/// exact: a failed CAS/SC observed the value but left it untouched, so it
/// commutes with other observers of the variable, while any overwrite — or an
/// RMW whose recorded result encodes the pre-value, like FAA — does not. LL
/// counts as kObserve: its reservation is invalidated only by overwrites of
/// the same variable, which are kMutate and hence already dependent.
enum class AccessClass {
  kObserve,  ///< read the value, did not change it (read, LL, failed CAS/SC)
  kMutate,   ///< overwrote the value (write, FAA, FAS, TAS, successful CAS/SC)
};

constexpr AccessClass access_class(const OpOutcome& outcome) {
  return outcome.nontrivial ? AccessClass::kMutate : AccessClass::kObserve;
}

/// Short human-readable mnemonic, e.g. "CAS".
std::string to_string(OpType t);

/// Renders an op like "CAS(v12, 0, 1)".
std::string to_string(const MemOp& op);

}  // namespace rmrsim
