#include "memory/shared_memory.h"

#include "common/check.h"
#include "memory/cc_model.h"
#include "memory/dsm_model.h"

namespace rmrsim {

SharedMemory::SharedMemory(int nprocs, std::unique_ptr<CostModel> model)
    : store_(nprocs), model_(std::move(model)), ledger_(nprocs) {
  ensure(model_ != nullptr, "SharedMemory requires a cost model");
}

SharedMemory::SharedMemory(MemoryStore store, std::unique_ptr<CostModel> model,
                           RmrLedger ledger)
    : store_(std::move(store)), model_(std::move(model)),
      ledger_(std::move(ledger)) {
  ensure(model_ != nullptr, "SharedMemory requires a cost model");
}

VarId SharedMemory::allocate(Word initial, ProcId home, std::string name) {
  return store_.allocate(initial, home, std::move(name));
}

OpOutcome SharedMemory::apply(ProcId p, const MemOp& op) {
  const bool rmr = model_->classify_rmr(p, op, store_);
  const MemoryStore::ApplyResult applied = store_.apply(p, op);
  int remote_copies_before = 0;
  model_->on_applied(p, op, applied.wrote, store_, &remote_copies_before);
  ledger_.record(p, op, rmr);
  if (listener_ != nullptr) {
    listener_->on_event(CoherenceEvent{
        .proc = p,
        .var = op.var,
        .op = op.type,
        .rmr = rmr,
        .nontrivial = applied.wrote,
        .remote_copies_before = remote_copies_before,
    });
  }
  return OpOutcome{
      .result = applied.result,
      .rmr = rmr,
      .nontrivial = applied.wrote,
      .prev_writer = applied.prev_writer,
  };
}

void SharedMemory::reset() {
  store_.reset();
  model_->reset();
  ledger_.reset();
}

std::unique_ptr<SharedMemory> make_dsm(int nprocs) {
  return std::make_unique<SharedMemory>(nprocs, std::make_unique<DsmModel>());
}

std::unique_ptr<SharedMemory> make_cc(int nprocs, CcPolicy policy) {
  return std::make_unique<SharedMemory>(nprocs,
                                        std::make_unique<CcModel>(policy));
}

}  // namespace rmrsim
