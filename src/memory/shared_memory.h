// SharedMemory: the composed memory system of one simulated multiprocessor.
//
// Binds together the value store (variables + primitive semantics), one cost
// model (DSM or a CC policy), the RMR ledger, and an optional coherence
// listener. This is the only memory interface the runtime uses, so a single
// algorithm implementation is priced under any architecture by swapping the
// cost model — the paper's core exercise.
#pragma once

#include <memory>
#include <string>

#include "memory/cc_model.h"
#include "memory/cost_model.h"
#include "memory/ledger.h"
#include "memory/memop.h"
#include "memory/store.h"

namespace rmrsim {

class SharedMemory {
 public:
  SharedMemory(int nprocs, std::unique_ptr<CostModel> model);

  /// Rehydrates a memory system from captured parts (world forking): the
  /// store and ledger are copied in, the cost model is adopted as-is. Used
  /// by Simulation::restore; the coherence listener is NOT part of a
  /// snapshot (it aggregates across runs and callers own its lifecycle), so
  /// a restored memory starts with no listener.
  SharedMemory(MemoryStore store, std::unique_ptr<CostModel> model,
               RmrLedger ledger);

  /// Deep copy: values, writer/reservation masks, cache state, and ledger
  /// all duplicated; the clone's future pricing is independent of (and
  /// initially identical to) the original's. The listener is not carried
  /// over (see the parts constructor).
  std::unique_ptr<SharedMemory> clone() const {
    return std::make_unique<SharedMemory>(store_, model_->clone(), ledger_);
  }

  /// Allocates a variable homed at `home` (kNoProc = detached module).
  VarId allocate(Word initial, ProcId home, std::string name = {});

  /// Convenience: a variable in processor `p`'s own module (the co-location
  /// idiom RMR-efficient DSM algorithms are built on).
  VarId allocate_local(ProcId p, Word initial, std::string name = {}) {
    return allocate(initial, p, std::move(name));
  }

  /// Convenience: a variable in a detached module (global; remote to every
  /// process in DSM, cacheable by every process in CC).
  VarId allocate_global(Word initial, std::string name = {}) {
    return allocate(initial, kNoProc, std::move(name));
  }

  /// Classifies the pending op without applying it — the adversary's "about
  /// to perform an RMR" test (Section 6.1).
  bool classify_rmr(ProcId p, const MemOp& op) const {
    return model_->classify_rmr(p, op, store_);
  }

  /// Applies `op` atomically for `p`: store semantics, pricing, ledger, and
  /// coherence-event publication.
  OpOutcome apply(ProcId p, const MemOp& op);

  /// Fast-path variant for the compiled step engine: identical store and
  /// pricing semantics, but the ledger is NOT charged and no coherence
  /// event is published. Callers accumulate (ops, rmrs) per process and
  /// flush via ledger().charge() — sound because ledger entries are plain
  /// commuting increments. Only valid with no listener attached. Inline
  /// (runs once per memory-op step on the compiled hot loop).
  OpOutcome apply_unledgered(ProcId p, const MemOp& op) {
    ensure(listener_ == nullptr,
           "apply_unledgered() is only valid with no coherence listener");
    const bool rmr = model_->classify_rmr(p, op, store_);
    const MemoryStore::ApplyResult applied = store_.apply(p, op);
    int remote_copies_before = 0;
    model_->on_applied(p, op, applied.wrote, store_, &remote_copies_before);
    return OpOutcome{
        .result = applied.result,
        .rmr = rmr,
        .nontrivial = applied.wrote,
        .prev_writer = applied.prev_writer,
    };
  }

  int nprocs() const { return store_.nprocs(); }
  const MemoryStore& store() const { return store_; }
  const RmrLedger& ledger() const { return ledger_; }

  /// Mutable store/ledger access — used only by process erasure
  /// (Simulation::erase_process) to rewrite state outside of process steps.
  MemoryStore& store() { return store_; }
  RmrLedger& ledger() { return ledger_; }
  const CostModel& model() const { return *model_; }
  CostModel& model() { return *model_; }

  /// Registers (or clears, with nullptr) the coherence message counter.
  void set_listener(CoherenceListener* listener) { listener_ = listener; }
  CoherenceListener* listener() const { return listener_; }

  /// Process `p` crashed: forwards to the cost model (cached copies die
  /// with the processor) and to the coherence listener, whose protocol
  /// state must track the same architectural event. Called by
  /// Simulation::crash, never during a step.
  void notify_crash(ProcId p) {
    model_->on_crash(p);
    if (listener_ != nullptr) listener_->on_crash(p);
  }

  /// Resets values, caches, and the ledger to the initial state; variable
  /// ids stay valid. The listener, if any, is NOT reset here (callers own
  /// its lifecycle).
  void reset();

 private:
  MemoryStore store_;
  std::unique_ptr<CostModel> model_;
  RmrLedger ledger_;
  CoherenceListener* listener_ = nullptr;
};

/// Factory helpers so call sites read like the paper: make_dsm(n),
/// make_cc(n) (ideal/write-through), make_cc(n, CcPolicy::kWriteBack), ...
std::unique_ptr<SharedMemory> make_dsm(int nprocs);
std::unique_ptr<SharedMemory> make_cc(int nprocs,
                                      CcPolicy policy = CcPolicy::kWriteThrough);

}  // namespace rmrsim
