// Distributed shared memory (DSM) cost model.
//
// Section 2: "a memory access is an RMR if and only if the address accessed
// by the processor maps to a memory module tied to another processor." There
// are no caches; the classification is static per (process, variable).
// Variables homed in a detached module (kNoProc) are remote to everyone —
// conservative, and matches a memory module not tied to any processor.
#pragma once

#include "memory/cost_model.h"

namespace rmrsim {

class DsmModel final : public CostModel {
 public:
  bool classify_rmr(ProcId p, const MemOp& op,
                    const MemoryStore& store) const override {
    return store.home(op.var) != p;
  }

  void on_applied(ProcId, const MemOp&, bool, const MemoryStore&,
                  int* remote_copies_before) override {
    *remote_copies_before = 0;  // no caches in DSM
  }

  void reset() override {}

  std::unique_ptr<CostModel> clone() const override {
    return std::make_unique<DsmModel>();  // stateless: nothing to copy
  }

  std::string_view name() const override { return "DSM"; }

  bool pricing_is_stateless() const override { return true; }
};

}  // namespace rmrsim
