// Cost models: local access vs remote memory reference (RMR).
//
// The paper's central act is pricing the *same* algorithm under two
// architectures (Figure 1): the DSM model, where an access is an RMR iff it
// targets another processor's memory module, and the CC model, where RMRs
// depend on per-processor cache state and the coherence policy. A CostModel
// classifies each operation before it is applied ("is the pending op an
// RMR?") and updates its architectural state after application.
#pragma once

#include <memory>
#include <string_view>

#include "common/types.h"
#include "memory/memop.h"
#include "memory/store.h"

namespace rmrsim {

struct ByteReader;  // common/codec.h

/// One architecturally relevant memory event, published to coherence-protocol
/// message counters (Section 8's RMR-vs-message "exchange rate" analysis).
struct CoherenceEvent {
  ProcId proc = kNoProc;      ///< process that applied the op
  VarId var = kNoVar;         ///< variable accessed
  OpType op = OpType::kRead;  ///< primitive applied
  bool rmr = false;           ///< priced as RMR by the active cost model
  bool nontrivial = false;    ///< overwrote the variable (Section 2)
  int remote_copies_before = 0;  ///< valid cached copies held by *other*
                                 ///< procs just before the op (CC only; 0 in
                                 ///< DSM, where there are no caches)
};

/// Observer of coherence events. Implemented by the message-counting
/// protocols and the snooping-cache state machines in src/coherence.
class CoherenceListener {
 public:
  virtual ~CoherenceListener() = default;
  virtual void on_event(const CoherenceEvent& event) = 0;

  /// Process `p` crashed: its processor powers down and every cached copy
  /// it held disappears, exactly mirroring CostModel::on_crash. Stateful
  /// listeners (protocol state machines) must drop p's lines or their
  /// sharer sets drift from the pricing model's. Default: no state, no-op.
  virtual void on_crash(ProcId p) { (void)p; }

  /// End-of-run barrier. Buffering front ends (the write buffer) drain
  /// pending operations into their backing protocol here so final tallies
  /// are complete. Stateless counters need nothing.
  virtual void flush() {}
};

/// Architecture pricing interface.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Deep copy of the model including all architectural state (cache lines,
  /// ownership). World forking (Simulation::fork / WorldSnapshot) relies on
  /// this to give the forked world an independent pricing state that evolves
  /// exactly like the original's.
  virtual std::unique_ptr<CostModel> clone() const = 0;

  /// Would `op`, applied next by `p`, be a remote memory reference? Pure with
  /// respect to the model's state; may consult the store (e.g. a CAS that
  /// would fail is a comparison miss under LFCU).
  virtual bool classify_rmr(ProcId p, const MemOp& op,
                            const MemoryStore& store) const = 0;

  /// Updates architectural state (caches, ownership) after `op` was applied
  /// by `p`. `wrote` says whether the op overwrote the variable, and
  /// `remote_copies_before` is returned for event publication.
  virtual void on_applied(ProcId p, const MemOp& op, bool wrote,
                          const MemoryStore& store,
                          int* remote_copies_before) = 0;

  /// Clears all architectural state (empty caches). Used on replay.
  virtual void reset() = 0;

  /// Process `p` crashed (Simulation::crash). A crash powers down p's
  /// processor: any cached copies it held disappear, so a recovered p pays
  /// cold-miss RMRs again for its re-executed prologue. Caches here are
  /// pricing state only — the store always holds current values — so no
  /// write is lost (the RME model: shared memory survives crashes). Default
  /// is a no-op, which is exact for the stateless DSM pricing.
  virtual void on_crash(ProcId p) { (void)p; }

  /// Model name for tables and diagnostics, e.g. "DSM" or "CC/write-back".
  virtual std::string_view name() const = 0;

  /// Appends the architectural pricing state (cache lines, ownership) in the
  /// shared little-endian codec (common/codec.h) — the piece of a world
  /// snapshot that clone() copies in-process but a wire transfer must carry
  /// explicitly. Pairs with load_state() on a model of the same concrete
  /// type. Canonical: a pure function of the state, so it also feeds
  /// WorldSnapshot::fingerprint(). Default: stateless pricing (DSM) writes
  /// nothing.
  virtual void save_state(std::string& out) const { (void)out; }

  /// Restores state written by save_state(). Default: nothing to read.
  virtual void load_state(ByteReader& r) { (void)r; }

  /// True iff pricing carries no architectural state (no caches), so
  /// erasing an invisible process's steps cannot change how later accesses
  /// are priced. True for DSM, false for every CC policy.
  virtual bool pricing_is_stateless() const { return false; }
};

}  // namespace rmrsim
