// Shared-memory value store: variables, homes, and primitive semantics.
//
// The store is the architecture-neutral half of the memory system: it owns
// variable values, each variable's *home* memory module (the DSM partition of
// Section 2 / Figure 1), LL/SC reservations, and last-writer metadata. It
// applies primitive semantics but knows nothing about pricing; the CostModel
// (DSM or CC) classifies each access as local or RMR.
//
// Per-variable process sets (distinct writers, LL reservations) are stored as
// process bitmasks — `mask_words()` 64-bit words per variable in two flat
// arrays — so membership tests are O(1) and distinct_writers is a popcount,
// replacing the std::find scans the step loop used to pay per memory op
// (DESIGN.md, "Step-loop performance model"). Grids drive the simulator well
// past 64 processes (E1 sweeps to N=1024), hence multi-word masks rather than
// a single uint64_t.
//
// Layout is structure-of-arrays: values, initials, homes, and last-writers
// live in parallel flat vectors of trivially copyable elements, and the
// diagnostic names sit behind a copy-on-write shared vector. Copying a store
// (world forking / snapshot capture in the explorer) is therefore a handful
// of bulk memcpys plus one refcount bump — no per-variable std::string
// traffic — and the hot apply() path touches only the value lane.
//
// The store is fully resettable: reset() restores every variable to its
// initial value and clears reservations, which is what makes the lower-bound
// adversary's erasure-by-replay exact (DESIGN.md Section 4, item 5).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/codec.h"
#include "common/types.h"
#include "memory/memop.h"

namespace rmrsim {

class MemoryStore {
 public:
  /// Creates a store for a system of `nprocs` processors (homes must be in
  /// [0, nprocs) or kNoProc).
  explicit MemoryStore(int nprocs);

  /// Allocates a fresh variable with the given initial value, living in the
  /// memory module of processor `home`, or in a detached module if kNoProc.
  /// `name` is used only in diagnostics and history dumps.
  VarId allocate(Word initial, ProcId home, std::string name = {});

  int nprocs() const { return nprocs_; }
  int num_vars() const { return static_cast<int>(values_.size()); }

  /// Home module of `v` (kNoProc for a detached module). Inline: DSM pricing
  /// calls this once per memory-op step.
  ProcId home(VarId v) const { return homes_[index(v)]; }

  /// Current value (checker/diagnostic access; not a process step and never
  /// charged an RMR).
  Word value(VarId v) const;

  /// Initial value `v` was allocated with.
  Word initial(VarId v) const;

  /// Last process that overwrote `v`, or kNoProc if never written (initial
  /// values are attributed to no process).
  ProcId last_writer(VarId v) const;

  /// Number of *distinct* processes that have written `v` so far. Needed for
  /// the regularity condition 3 of Definition 6.6.
  int distinct_writers(VarId v) const;

  const std::string& name(VarId v) const;

  /// Would applying `op` by `p` overwrite the variable (the paper's
  /// "nontrivial" operation)? Pure: does not mutate. Used by cost models to
  /// classify an op before it is applied.
  bool would_write(ProcId p, const MemOp& op) const;

  struct ApplyResult {
    Word result = 0;
    bool wrote = false;
    ProcId prev_writer = kNoProc;
  };

  /// Applies `op` on behalf of process `p` atomically: computes the result,
  /// updates the value, maintains LL/SC reservations (any overwrite of a
  /// variable invalidates every other process's reservation on it), and
  /// updates writer metadata.
  ApplyResult apply(ProcId p, const MemOp& op);

  /// Restores every variable to its initial value and clears reservations
  /// and writer metadata. Variable ids remain valid.
  void reset();

  /// Surgical state rewrite used by process erasure (Lemma 6.7): sets the
  /// value and last-writer of `v` directly, bypassing pricing and ledger.
  /// Not a process step.
  void poke(VarId v, Word value, ProcId last_writer);

  /// Removes `p` from `v`'s distinct-writer set (erasure bookkeeping).
  void forget_writer(VarId v, ProcId p);

  /// Drops every LL reservation held by `p`, on every variable. A crash
  /// destroys the processor's reservation state (the link register does not
  /// survive a failure), and an erased process never existed — both paths
  /// must call this or a recovered process's SC could succeed without a
  /// fresh LL.
  void clear_reservations(ProcId p);

  /// Does `p` currently hold a valid LL reservation on `v`? Checker and
  /// test access; not a process step.
  bool has_reservation(ProcId p, VarId v) const;

  // ---- wire serialization (runtime/snapshot_codec.h) --------------------

  /// Appends the store's content in the shared little-endian codec: the
  /// allocation layout (nprocs, per-variable initials and homes) plus the
  /// mutable lanes (values, last-writers, writer and LL-reservation masks).
  /// Diagnostic names are excluded — they are cosmetic, and the receiving
  /// side's identically-constructed store supplies them. The byte stream is
  /// canonical (a pure function of the content), so it doubles as the input
  /// to WorldSnapshot::fingerprint().
  void encode(std::string& out) const;

  /// Restores content written by encode() into this store, which must have
  /// the identical layout (same nprocs and allocation sequence — the
  /// receiver builds it by running the same builder). Throws on layout
  /// mismatch or malformed input.
  void decode(ByteReader& r);

 private:
  std::size_t index(VarId v) const {
    ensure(v >= 0 && v < num_vars(), "variable id out of range");
    return static_cast<std::size_t>(v);
  }

  // Bitmask plumbing: variable v's process set occupies words
  // [v * mask_words_, (v + 1) * mask_words_) of the flat array.
  std::uint64_t* writer_mask(VarId v);
  const std::uint64_t* writer_mask(VarId v) const;
  std::uint64_t* reservation_mask(VarId v);
  const std::uint64_t* reservation_mask(VarId v) const;
  static bool mask_test(const std::uint64_t* m, ProcId p);
  static void mask_set(std::uint64_t* m, ProcId p);
  static void mask_clear(std::uint64_t* m, ProcId p);
  bool any_reservation(VarId v) const;
  void clear_slot_reservations(VarId v);

  void note_write(VarId v, ProcId p);

  int nprocs_;
  int mask_words_;
  // SoA variable lanes, indexed by VarId (all the same length).
  std::vector<Word> values_;
  std::vector<Word> initials_;
  std::vector<ProcId> homes_;
  std::vector<ProcId> last_writers_;
  // Diagnostic names, copy-on-write: snapshots share the vector; allocate()
  // clones it first if anyone else still holds a reference.
  std::shared_ptr<std::vector<std::string>> names_;
  std::vector<std::uint64_t> writers_bits_;      // mask_words_ words per var
  std::vector<std::uint64_t> reservation_bits_;  // mask_words_ words per var
};

}  // namespace rmrsim
