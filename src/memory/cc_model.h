// Cache-coherent (CC) cost models.
//
// Section 2 gives a "loose" CC definition sufficient for upper bounds: a run
// of reads of one location by one process costs one RMR in total unless some
// other process applies a nontrivial operation on that location in between
// (an ideal cache that never drops data spuriously). We realize that
// definition as a write-through invalidation cache and also provide two
// variants the paper discusses:
//
//  * kWriteThrough — the paper's ideal cache. Reads hit iff a valid copy is
//    cached; every nontrivial operation goes to the interconnect (one RMR)
//    and invalidates all other copies. This is the model under which the
//    Section 5 upper bound (O(1) RMR flag signaling) is stated.
//  * kWriteBack — MSI. A process that owns a line in Modified state writes
//    it locally; other processes' accesses demote/steal ownership. Strictly
//    cheaper than write-through for write-heavy single-owner phases.
//  * kMesi — MSI plus the Exclusive-clean state: a processor whose read
//    miss found no other sharers holds the line in E and upgrades to M
//    silently (locally!) on its first write — the read-then-write pattern
//    costs one RMR instead of two. This is the refinement real protocols
//    ship; experiment E8 quantifies what E buys.
//  * kLfcu — "Local-Failed-Comparison with write-Update" (Section 3, [1]):
//    failed comparison primitives (CAS/SC/TAS that would not overwrite) are
//    serviced from a valid cached copy locally, and writes *update* remote
//    copies instead of invalidating them. Under LFCU, TAS-based mutual
//    exclusion costs O(1) RMRs (experiment E8).
//
// State per variable: the set of processes holding a valid copy, plus (for
// write-back) the exclusive owner if any.
#pragma once

#include <string_view>
#include <vector>

#include "memory/cost_model.h"

namespace rmrsim {

enum class CcPolicy { kWriteThrough, kWriteBack, kMesi, kLfcu };

std::string_view to_string(CcPolicy policy);

class CcModel final : public CostModel {
 public:
  explicit CcModel(CcPolicy policy) : policy_(policy) {}

  bool classify_rmr(ProcId p, const MemOp& op,
                    const MemoryStore& store) const override;

  void on_applied(ProcId p, const MemOp& op, bool wrote,
                  const MemoryStore& store,
                  int* remote_copies_before) override;

  void reset() override { lines_.clear(); }

  std::unique_ptr<CostModel> clone() const override {
    return std::make_unique<CcModel>(*this);  // lines_ copies wholesale
  }

  /// Drops every copy the crashed process held (sharer, Modified owner, or
  /// Exclusive-clean holder) — its cache does not survive the crash.
  void on_crash(ProcId p) override;

  std::string_view name() const override;

  void save_state(std::string& out) const override;
  void load_state(ByteReader& r) override;

  CcPolicy policy() const { return policy_; }

  /// True iff `p` currently holds a valid cached copy of `v` (test hook).
  bool holds_copy(ProcId p, VarId v) const;

  /// True iff `p` holds `v` in Modified state (write-back/MESI; test hook).
  bool owns_exclusive(ProcId p, VarId v) const;

  /// True iff `p` holds `v` in Exclusive-clean state (MESI only; test hook).
  bool holds_exclusive_clean(ProcId p, VarId v) const;

 private:
  struct Line {
    std::vector<ProcId> sharers;  // procs with a valid copy (sorted)
    ProcId owner = kNoProc;       // Modified-state holder (write-back/MESI)
    ProcId exclusive = kNoProc;   // Exclusive-clean holder (MESI)
  };

  const Line* line(VarId v) const;
  Line& line_mut(VarId v);
  static bool contains(const std::vector<ProcId>& set, ProcId p);
  static void insert(std::vector<ProcId>& set, ProcId p);

  /// Treats the pending op as read-like (services from a valid copy) or
  /// write-like under the active policy.
  bool read_like(ProcId p, const MemOp& op, const MemoryStore& store) const;

  CcPolicy policy_;
  std::vector<Line> lines_;  // grows lazily; index = VarId
};

}  // namespace rmrsim
