#include "memory/memop.h"

namespace rmrsim {

std::string to_string(OpType t) {
  switch (t) {
    case OpType::kRead: return "READ";
    case OpType::kWrite: return "WRITE";
    case OpType::kCas: return "CAS";
    case OpType::kLl: return "LL";
    case OpType::kSc: return "SC";
    case OpType::kFaa: return "FAA";
    case OpType::kFas: return "FAS";
    case OpType::kTas: return "TAS";
  }
  return "?";
}

std::string to_string(const MemOp& op) {
  std::string out = to_string(op.type);
  out += "(v" + std::to_string(op.var);
  switch (op.type) {
    case OpType::kRead:
    case OpType::kLl:
    case OpType::kTas:
      break;
    case OpType::kWrite:
    case OpType::kSc:
    case OpType::kFaa:
    case OpType::kFas:
      out += ", " + std::to_string(op.arg0);
      break;
    case OpType::kCas:
      out += ", " + std::to_string(op.arg0) + ", " + std::to_string(op.arg1);
      break;
  }
  out += ")";
  return out;
}

}  // namespace rmrsim
