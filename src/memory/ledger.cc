#include "memory/ledger.h"

#include <algorithm>

#include "common/check.h"

namespace rmrsim {

RmrLedger::RmrLedger(int nprocs)
    : per_proc_(static_cast<std::size_t>(nprocs)) {
  ensure(nprocs > 0, "ledger needs at least one processor");
}

void RmrLedger::record(ProcId p, const MemOp&, bool rmr) {
  ensure(p >= 0 && p < nprocs(), "process id out of range");
  Counters& c = per_proc_[static_cast<std::size_t>(p)];
  ++c.ops;
  ++total_ops_;
  if (rmr) {
    ++c.rmrs;
    ++total_rmrs_;
  }
}

void RmrLedger::charge(ProcId p, std::uint64_t ops, std::uint64_t rmrs) {
  ensure(p >= 0 && p < nprocs(), "process id out of range");
  ensure(rmrs <= ops, "cannot charge more RMRs than operations");
  Counters& c = per_proc_[static_cast<std::size_t>(p)];
  c.ops += ops;
  c.rmrs += rmrs;
  total_ops_ += ops;
  total_rmrs_ += rmrs;
}

std::uint64_t RmrLedger::ops(ProcId p) const {
  ensure(p >= 0 && p < nprocs(), "process id out of range");
  return per_proc_[static_cast<std::size_t>(p)].ops;
}

std::uint64_t RmrLedger::rmrs(ProcId p) const {
  ensure(p >= 0 && p < nprocs(), "process id out of range");
  return per_proc_[static_cast<std::size_t>(p)].rmrs;
}

std::uint64_t RmrLedger::max_rmrs() const {
  std::uint64_t best = 0;
  for (const Counters& c : per_proc_) best = std::max(best, c.rmrs);
  return best;
}

void RmrLedger::forget(ProcId p) {
  ensure(p >= 0 && p < nprocs(), "process id out of range");
  Counters& c = per_proc_[static_cast<std::size_t>(p)];
  // The per-proc counters are only ever grown by record() and zeroed here or
  // in reset(), so the totals must still cover them; if they don't, a caller
  // has corrupted the ledger and subtracting would underflow the unsigned
  // totals into garbage RMR counts. Zeroed counters make a second forget()
  // (or one after reset()) a no-op rather than an underflow.
  ensure(total_ops_ >= c.ops && total_rmrs_ >= c.rmrs,
         "ledger totals out of sync with per-proc counters in forget()");
  total_ops_ -= c.ops;
  total_rmrs_ -= c.rmrs;
  c = Counters{};
}

void RmrLedger::reset() {
  std::fill(per_proc_.begin(), per_proc_.end(), Counters{});
  total_ops_ = 0;
  total_rmrs_ = 0;
}

}  // namespace rmrsim
