// RMR accounting.
//
// The paper's complexity measure: worst-case RMRs per process, and *amortized*
// RMR complexity — total RMRs divided by the number of participating
// processes (Section 1, Theorem 6.2). The ledger tracks, per process, total
// operations and RMRs, so both measures (and per-procedure-call breakdowns
// computed by callers) fall out directly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "memory/memop.h"

namespace rmrsim {

class RmrLedger {
 public:
  explicit RmrLedger(int nprocs);

  void record(ProcId p, const MemOp& op, bool rmr);

  /// Batch charge: equivalent to `ops` record() calls of which `rmrs` were
  /// RMRs. The compiled engine's fast path accumulates per process and
  /// flushes at schedule-point granularity (Simulation::run exit).
  void charge(ProcId p, std::uint64_t ops, std::uint64_t rmrs);

  /// Total shared-memory operations applied by `p`.
  std::uint64_t ops(ProcId p) const;

  /// RMRs incurred by `p`.
  std::uint64_t rmrs(ProcId p) const;

  /// Local (non-RMR) accesses by `p`.
  std::uint64_t locals(ProcId p) const { return ops(p) - rmrs(p); }

  std::uint64_t total_ops() const { return total_ops_; }
  std::uint64_t total_rmrs() const { return total_rmrs_; }

  int nprocs() const { return static_cast<int>(per_proc_.size()); }

  /// Maximum RMRs incurred by any single process.
  std::uint64_t max_rmrs() const;

  /// Removes `p`'s contribution from all counters (process erasure).
  void forget(ProcId p);

  void reset();

 private:
  struct Counters {
    std::uint64_t ops = 0;
    std::uint64_t rmrs = 0;
  };
  std::vector<Counters> per_proc_;
  std::uint64_t total_ops_ = 0;
  std::uint64_t total_rmrs_ = 0;
};

}  // namespace rmrsim
