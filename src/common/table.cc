#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace rmrsim {

void TextTable::set_header(std::vector<std::string> header) {
  ensure(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  ensure(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(header_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row, out);
  }
  return out;
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace rmrsim
