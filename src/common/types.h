// Core identifier and value types shared by every rmrsim module.
//
// The simulator models the system of Golab's paper (Section 2): up to N
// asynchronous processes p_0 .. p_{N-1}, each bound to one processor, that
// communicate through shared memory words accessed with atomic primitives.
#pragma once

#include <cstdint>

namespace rmrsim {

/// Index of a process/processor. Processes are numbered 0..N-1; the paper's
/// p_i corresponds to ProcId i-1.
using ProcId = std::int32_t;

/// Index of a shared-memory variable (one machine word).
using VarId = std::int32_t;

/// Value stored in one shared variable. One signed word is enough for every
/// algorithm in the paper (booleans, process ids, counters, packed pairs).
using Word = std::int64_t;

/// Sentinel for "no process". Used for variable homes that belong to no
/// processor (a detached memory module) and for NIL process-id variables.
inline constexpr ProcId kNoProc = -1;

/// Sentinel for "no variable".
inline constexpr VarId kNoVar = -1;

}  // namespace rmrsim
