// Plain-text table rendering for benchmark harnesses.
//
// Every experiment binary in bench/ regenerates one of the paper's complexity
// claims as a table or series (DESIGN.md Section 3). This helper renders
// aligned ASCII tables so EXPERIMENTS.md rows can be pasted directly from
// bench output.
#pragma once

#include <string>
#include <vector>

namespace rmrsim {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends one data row; its size must match the header's.
  void add_row(std::vector<std::string> row);

  /// Renders the table, one line per row, columns padded with two spaces and
  /// a dashed rule under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` digits after the decimal point.
std::string fixed(double value, int digits = 2);

}  // namespace rmrsim
