// Deterministic pseudo-random number generation.
//
// Everything in rmrsim that needs randomness (random schedulers, workload
// generators, property-test sweeps) draws from SplitMix64 seeded explicitly,
// so that every history is reproducible from (algorithm, parameters, seed).
// Determinism is load-bearing: the lower-bound adversary re-executes histories
// via replay and relies on identical outcomes (DESIGN.md Section 5).
#pragma once

#include <cstdint>

namespace rmrsim {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG with trivially copyable
/// state. Not cryptographic; plenty for scheduling and workload generation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). Requires bound > 0. Uses rejection-free
  /// multiply-shift reduction (slight modulo bias is irrelevant for tests and
  /// schedulers; determinism is what matters).
  constexpr std::uint64_t below(std::uint64_t bound) {
    return next() % bound;
  }

  /// Bernoulli draw: true with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace rmrsim
