// Growth-rate fitting for shape assertions.
//
// The reproduction's claims are asymptotic classes (O(1), Theta(log N),
// Theta(N)); with "N large enough" replaced by finite sweeps (DESIGN.md
// substitution 6), tests and EXPERIMENTS.md assert the *slope* of measured
// series instead of absolute numbers: on a log-log plot, cost ~ N^a fits a
// line of slope a (a ~ 0 for O(1), ~1 for linear; logarithmic growth shows
// a slope that decays toward 0 as N grows).
#pragma once

#include <span>

namespace rmrsim {

/// Least-squares slope of log(y) against log(x). Requires xs.size() ==
/// ys.size() >= 2, all values > 0.
double loglog_slope(std::span<const double> xs, std::span<const double> ys);

/// Least-squares slope of y against x (plain linear fit).
double linear_slope(std::span<const double> xs, std::span<const double> ys);

}  // namespace rmrsim
