#include "common/check.h"

#include <stdexcept>
#include <string>

namespace rmrsim::detail {

void throw_check_failure(std::string_view message,
                         const std::source_location& where) {
  std::string out;
  out += where.file_name();
  out += ':';
  out += std::to_string(where.line());
  out += " [";
  out += where.function_name();
  out += "] ";
  out += message;
  throw std::logic_error(out);
}

}  // namespace rmrsim::detail
