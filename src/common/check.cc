#include "common/check.h"

#include <stdexcept>
#include <string>

namespace rmrsim {

namespace {
std::string format(std::string_view message, const std::source_location& where) {
  std::string out;
  out += where.file_name();
  out += ':';
  out += std::to_string(where.line());
  out += " [";
  out += where.function_name();
  out += "] ";
  out += message;
  return out;
}
}  // namespace

void ensure(bool cond, std::string_view message, std::source_location where) {
  if (!cond) {
    throw std::logic_error(format(message, where));
  }
}

void fail(std::string_view message, std::source_location where) {
  throw std::logic_error(format(message, where));
}

}  // namespace rmrsim
