#include "common/codec.h"

#include <bit>

#include "common/crc32.h"

namespace rmrsim {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

void put_schedule(std::string& out, const std::vector<ProcId>& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  for (const ProcId p : s) {
    put_u32(out, static_cast<std::uint32_t>(p));
  }
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  p += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  p += 8;
  return v;
}

double ByteReader::dbl() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(p, n);
  p += n;
  return s;
}

std::vector<ProcId> ByteReader::schedule() {
  const std::uint32_t n = u32();
  need(std::size_t{4} * n);
  std::vector<ProcId> s;
  s.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    s.push_back(static_cast<ProcId>(u32()));
  }
  return s;
}

void put_record(std::string& out, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  put_u32(out, crc32(payload));
}

std::string take_record(ByteReader& r) {
  const std::uint32_t len = r.u32();
  r.need(len);
  std::string payload(r.p, len);
  r.p += len;
  const std::uint32_t want = r.u32();
  if (crc32(payload) != want) {
    throw std::runtime_error("record CRC mismatch");
  }
  return payload;
}

}  // namespace rmrsim
