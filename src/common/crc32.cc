#include "common/crc32.h"

#include <array>

namespace rmrsim {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = kCrcTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace rmrsim
