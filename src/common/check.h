// Internal invariant checking.
//
// Simulator invariants are enforced with ensure(): violations indicate a bug
// in rmrsim itself (or misuse of its API) and throw, so tests fail loudly
// instead of producing silently wrong RMR counts.
#pragma once

#include <source_location>
#include <string_view>

namespace rmrsim {

namespace detail {
/// Cold path shared by ensure()/fail(): formats the call site and throws
/// std::logic_error. Out of line so the hot inlined check is just a
/// test-and-branch.
[[noreturn]] void throw_check_failure(std::string_view message,
                                      const std::source_location& where);
}  // namespace detail

/// Throws std::logic_error with a message naming the call site if `cond` is
/// false. Used for simulator-internal invariants and API preconditions.
///
/// Inline on purpose: checks sit on the simulator's per-step hot paths, and
/// an out-of-line call per check is measurable there. The passing case
/// compiles to a predicted-not-taken branch; all formatting and throwing
/// lives in the cold helper.
inline void ensure(bool cond, std::string_view message,
                   std::source_location where =
                       std::source_location::current()) {
  if (!cond) [[unlikely]] {
    detail::throw_check_failure(message, where);
  }
}

/// Unconditional failure; convenience for unreachable branches.
[[noreturn]] inline void fail(std::string_view message,
                              std::source_location where =
                                  std::source_location::current()) {
  detail::throw_check_failure(message, where);
}

}  // namespace rmrsim
