// Internal invariant checking.
//
// Simulator invariants are enforced with ensure(): violations indicate a bug
// in rmrsim itself (or misuse of its API) and throw, so tests fail loudly
// instead of producing silently wrong RMR counts.
#pragma once

#include <source_location>
#include <string_view>

namespace rmrsim {

/// Throws std::logic_error with a message naming the call site if `cond` is
/// false. Used for simulator-internal invariants and API preconditions.
void ensure(bool cond, std::string_view message,
            std::source_location where = std::source_location::current());

/// Unconditional failure; convenience for unreachable branches.
[[noreturn]] void fail(std::string_view message,
                       std::source_location where =
                           std::source_location::current());

}  // namespace rmrsim
