#include "common/fsio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace rmrsim {

namespace {

std::string errno_text() { return std::strerror(errno); }

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  ensure(fd >= 0, "cannot open '" + tmp + "' for writing: " + errno_text());

  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = errno_text();
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write to '" + tmp + "' failed: " + why);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync of '" + tmp + "' failed: " + why);
  }
  if (::close(fd) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp.c_str());
    fail("close of '" + tmp + "' failed: " + why);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp.c_str());
    fail("rename '" + tmp + "' -> '" + path + "' failed: " + why);
  }
  // Make the rename itself durable: fsync the containing directory. Some
  // filesystems refuse O_RDONLY fsync on directories; a failure here cannot
  // tear the file (the rename was atomic), so it is not fatal.
  const int dfd = ::open(dirname_of(path).c_str(),
                         O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buf.str();
}

void ensure_dir(const std::string& path) {
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    std::size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    prefix = path.substr(0, slash);
    pos = slash + 1;
    if (prefix.empty() || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      fail("cannot create directory '" + prefix + "': " + errno_text());
    }
  }
}

}  // namespace rmrsim
