// Checksums and fingerprints for on-disk records.
//
// The checkpoint format (verify/checkpoint.h) guards every record and
// header with CRC-32 so a torn or bit-flipped write is detected, never
// trusted; FNV-1a 64 fingerprints a search configuration so a checkpoint
// written under one set of options refuses to resume under another.
// Both are self-contained (no zlib dependency) and byte-order independent:
// they hash the bytes they are given.
#pragma once

#include <cstdint>
#include <string_view>

namespace rmrsim {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), the checksum of
/// zip/zlib/ethernet. crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view bytes);

/// FNV-1a 64-bit hash — cheap, stable across platforms, good enough to
/// fingerprint configuration strings (not adversarial input).
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace rmrsim
