// Little-endian byte-stream codec shared by every durable/wire format.
//
// The checkpoint file format (verify/checkpoint.cc), the snapshot wire
// codec (runtime/snapshot_codec.cc), and the sharded-exploration pipe
// protocol (verify/dist/protocol.cc) all speak the same primitive
// vocabulary: fixed-width little-endian integers, bit-cast doubles,
// length-prefixed strings and schedules, and CRC-32-framed records. One
// implementation means one set of malformation tests covers them all, and
// a record written by any producer is rejected identically by any
// consumer when torn, truncated, or bit-flipped.
//
// Layout is byte-for-byte the format PR 6 shipped in the checkpoint files;
// factoring it out must not (and does not) change a single byte on disk.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace rmrsim {

// ---- little-endian byte stream helpers ---------------------------------

void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_double(std::string& out, double v);

/// u32 length prefix + raw bytes.
void put_string(std::string& out, std::string_view s);

/// u32 count + one u32 per ProcId.
void put_schedule(std::string& out, const std::vector<ProcId>& s);

/// Sequential reader over an encoded byte range. Every accessor bounds-
/// checks and throws std::runtime_error("record truncated") rather than
/// reading past the end; decoders call done() last to reject trailing
/// garbage explicitly.
struct ByteReader {
  const char* p;
  const char* end;

  explicit ByteReader(std::string_view bytes)
      : p(bytes.data()), end(bytes.data() + bytes.size()) {}

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      throw std::runtime_error("record truncated");
    }
  }
  std::uint32_t u32();
  std::uint64_t u64();
  double dbl();
  std::string str();
  std::vector<ProcId> schedule();
  bool done() const { return p == end; }
};

// ---- record framing -----------------------------------------------------

/// Appends one CRC-framed record: u32 payload length, payload, u32 CRC of
/// the payload.
void put_record(std::string& out, std::string_view payload);

/// Extracts and CRC-verifies the next framed record. Throws
/// std::runtime_error on truncation or CRC mismatch.
std::string take_record(ByteReader& r);

}  // namespace rmrsim
