#include "common/stats.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace rmrsim {

namespace {

double slope(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = xs.size();
  double mx = 0;
  double my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double num = 0;
  double den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (xs[i] - mx) * (ys[i] - my);
    den += (xs[i] - mx) * (xs[i] - mx);
  }
  ensure(den > 0, "slope fit needs at least two distinct x values");
  return num / den;
}

}  // namespace

double loglog_slope(std::span<const double> xs, std::span<const double> ys) {
  ensure(xs.size() == ys.size() && xs.size() >= 2,
         "slope fit needs matched series of length >= 2");
  std::vector<double> lx;
  std::vector<double> ly;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ensure(xs[i] > 0 && ys[i] > 0, "log-log fit needs positive values");
    lx.push_back(std::log(xs[i]));
    ly.push_back(std::log(ys[i]));
  }
  return slope(lx, ly);
}

double linear_slope(std::span<const double> xs, std::span<const double> ys) {
  ensure(xs.size() == ys.size() && xs.size() >= 2,
         "slope fit needs matched series of length >= 2");
  return slope(xs, ys);
}

}  // namespace rmrsim
