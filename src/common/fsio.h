// Durable file I/O for artifacts and checkpoints.
//
// Anything the repo writes that a later run (or a CI gate) will trust must
// survive a SIGKILL mid-write: a reader must see either the old complete
// file or the new complete file, never a torn one. write_file_atomic gives
// that guarantee the POSIX way — write to `<path>.tmp`, fsync the data,
// rename over the target, fsync the directory — and fails loudly (throws)
// on any error instead of leaving a silent partial write behind.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace rmrsim {

/// Atomically replaces `path` with `bytes`: tmp file + fsync + rename +
/// directory fsync. Throws (common/check.h) with the failing path and errno
/// text on any error; on failure the target file is untouched and the tmp
/// file is removed.
void write_file_atomic(const std::string& path, std::string_view bytes);

/// Reads a whole file; std::nullopt if it cannot be opened or read.
std::optional<std::string> read_file(const std::string& path);

/// mkdir -p: creates `path` and any missing parents. Throws on failure.
void ensure_dir(const std::string& path);

}  // namespace rmrsim
