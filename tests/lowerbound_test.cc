// Tests for the Section 6 adversary: erasure soundness (Lemma 6.7),
// independent sets (Turán bound), the part-1 construction (Definition 6.9
// invariants), and the part-2 wild goose chase forcing Omega(k) signaler
// RMRs on every read/write algorithm — while the CC flag algorithm under the
// CC model stays O(1). This is Theorem 6.2 vs Section 5, executable.
#include <gtest/gtest.h>

#include "lowerbound/adversary.h"
#include "lowerbound/independent_set.h"
#include "memory/cc_model.h"
#include "signaling/broken.h"
#include "signaling/cas_registration.h"
#include "signaling/cc_flag.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"

namespace rmrsim {
namespace {

TEST(IndependentSet, TuranBoundHolds) {
  // A 3x4 grid-ish graph: 12 vertices in a path.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < 12; ++i) edges.emplace_back(i, i + 1);
  const auto is = greedy_independent_set(12, edges);
  // Path graph: alpha = 6; Turán bound: 12 / (2*11/12 + 1) = 4.2 -> >= 5.
  EXPECT_GE(is.size(), 5u);
  // Independence.
  for (const auto& [a, b] : edges) {
    const bool has_a = std::binary_search(is.begin(), is.end(), a);
    const bool has_b = std::binary_search(is.begin(), is.end(), b);
    EXPECT_FALSE(has_a && has_b) << a << "-" << b;
  }
}

TEST(IndependentSet, EmptyGraphKeepsEverything) {
  const auto is = greedy_independent_set(7, {});
  EXPECT_EQ(is.size(), 7u);
}

TEST(IndependentSet, StarGraphKeepsLeaves) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < 10; ++i) edges.emplace_back(0, i);
  const auto is = greedy_independent_set(10, edges);
  EXPECT_EQ(is.size(), 9u);  // all leaves
}

// ---------------------------------------------------------------------------
// Erasure (Lemma 6.7) unit tests.
// ---------------------------------------------------------------------------

TEST(Erasure, RevertsInvisibleWritesExactly) {
  auto mem = make_dsm(3);
  const VarId a = mem->allocate_global(5, "a");
  const VarId b = mem->allocate_global(0, "b");
  std::vector<Program> programs(3);
  programs[0] = [a](ProcCtx& ctx) -> ProcTask {
    co_await ctx.write(a, 100);
    co_await ctx.read(a);
    co_await ctx.read(a);
  };
  programs[1] = [b](ProcCtx& ctx) -> ProcTask { co_await ctx.write(b, 7); };
  Simulation sim(*mem, std::move(programs));
  sim.step(0);  // p0: a := 100 (invisible: nobody read it)
  sim.step(1);  // p1: b := 7, terminates
  ASSERT_EQ(mem->store().value(a), 100);

  sim.erase_process(0);
  EXPECT_EQ(mem->store().value(a), 5);  // reverted to initial
  EXPECT_EQ(mem->store().value(b), 7);  // untouched
  EXPECT_EQ(mem->store().last_writer(a), kNoProc);
  EXPECT_FALSE(sim.history().participated(0));
  EXPECT_TRUE(sim.erased(0));
  EXPECT_EQ(mem->ledger().rmrs(0), 0u);
  // p1's record survives with reassigned index 0.
  ASSERT_EQ(sim.history().size(), 1u);
  EXPECT_EQ(sim.history().records()[0].proc, 1);
}

TEST(Erasure, RevertsToPreviousWritersValue) {
  auto mem = make_dsm(2);
  const VarId a = mem->allocate_global(0, "a");
  std::vector<Program> programs(2);
  programs[0] = [a](ProcCtx& ctx) -> ProcTask { co_await ctx.write(a, 11); };
  programs[1] = [a](ProcCtx& ctx) -> ProcTask {
    co_await ctx.write(a, 22);
    co_await ctx.read(a);
  };
  Simulation sim(*mem, std::move(programs));
  sim.step(0);  // a := 11, p0 terminates -> finished
  sim.step(1);  // a := 22 by p1 (p0's write overwritten, p0 never seen)
  sim.erase_process(1);
  EXPECT_EQ(mem->store().value(a), 11);
  EXPECT_EQ(mem->store().last_writer(a), 0);
}

TEST(Erasure, RefusesWhenProcessWasSeen) {
  auto mem = make_dsm(2);
  const VarId a = mem->allocate_global(0, "a");
  std::vector<Program> programs(2);
  programs[0] = [a](ProcCtx& ctx) -> ProcTask {
    co_await ctx.write(a, 11);
    co_await ctx.read(a);
  };
  programs[1] = [a](ProcCtx& ctx) -> ProcTask {
    co_await ctx.read(a);
    co_await ctx.read(a);
  };
  Simulation sim(*mem, std::move(programs));
  sim.step(0);  // p0 writes a
  sim.step(1);  // p1 reads a -> sees p0
  EXPECT_THROW(sim.erase_process(0), std::logic_error);
}

TEST(Erasure, RefusesUnderCacheCoherentModel) {
  auto mem = make_cc(2);
  const VarId a = mem->allocate_global(0, "a");
  std::vector<Program> programs(2);
  programs[0] = [a](ProcCtx& ctx) -> ProcTask { co_await ctx.write(a, 1); };
  Simulation sim(*mem, std::move(programs));
  sim.step(0);
  EXPECT_THROW(sim.erase_process(0), std::logic_error);
}

TEST(Erasure, RefusesLlScHistories) {
  auto mem = make_dsm(2);
  const VarId a = mem->allocate_global(0, "a");
  std::vector<Program> programs(2);
  programs[0] = [a](ProcCtx& ctx) -> ProcTask {
    co_await ctx.ll(a);
    co_await ctx.sc(a, 1);
    co_await ctx.read(a);
  };
  programs[1] = [a](ProcCtx& ctx) -> ProcTask { co_await ctx.write(a, 9); };
  Simulation sim(*mem, std::move(programs));
  sim.step(0);  // LL
  EXPECT_THROW(sim.erase_process(0), std::logic_error);
}

// ---------------------------------------------------------------------------
// Full adversary runs.
// ---------------------------------------------------------------------------

AdversaryConfig dsm_config(int nprocs) {
  AdversaryConfig c;
  c.nprocs = nprocs;
  c.construction = Construction::kStrict;
  return c;
}

TEST(Adversary, RegistrationAlgorithmForcedLinearSignalerCost) {
  // dsm-registration is a correct read/write algorithm; Theorem 6.2 applies.
  const int n = 64;
  SignalingAdversary adv(
      [n](SharedMemory& m) {
        return std::make_unique<DsmRegistrationSignal>(
            m, static_cast<ProcId>(n - 2));
      },
      dsm_config(n));
  const auto report = adv.run();
  EXPECT_TRUE(report.in_scope);
  EXPECT_TRUE(report.stabilized) << report.to_string();
  EXPECT_FALSE(report.spec_violation) << report.violation_what;
  // The chase forces at least one signaler RMR per stable waiter.
  EXPECT_GE(report.signaler_rmrs,
            static_cast<std::uint64_t>(report.stable_waiters));
  EXPECT_GT(report.stable_waiters, n / 4) << report.to_string();
  // Final history: a handful of participants, ~N RMRs -> amortized >> O(1).
  EXPECT_LE(report.participants_final, 8);
  EXPECT_GE(report.amortized_final, 4.0) << report.to_string();
}

TEST(Adversary, FlagAlgorithmInDsmHitsUnstableBranch) {
  // cc-flag under DSM: waiters never stabilize (every poll is an RMR), so
  // the Lemma 6.11 branch fires and amortized RMRs grow under extension.
  const int n = 32;
  SignalingAdversary adv(
      [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
      dsm_config(n));
  const auto report = adv.run();
  EXPECT_TRUE(report.in_scope);
  EXPECT_FALSE(report.stabilized);
  EXPECT_TRUE(report.unstable_branch);
  EXPECT_GT(report.unstable_amortized_end,
            report.unstable_amortized_start + 2.0)
      << report.to_string();
}

TEST(Adversary, CcControlStaysConstant) {
  // The separation's other side: the same flag algorithm under the CC model
  // stabilizes (reads cache) and the signaler pays O(1) — nothing for the
  // adversary to amplify.
  AdversaryConfig c;
  c.nprocs = 64;
  c.construction = Construction::kLenient;
  c.erase_during_chase = false;
  c.make_memory = [](int n) { return make_cc(n); };
  SignalingAdversary adv(
      [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); }, c);
  const auto report = adv.run();
  EXPECT_TRUE(report.stabilized) << report.to_string();
  EXPECT_FALSE(report.spec_violation) << report.violation_what;
  EXPECT_LE(report.signaler_rmrs, 2u) << report.to_string();
  EXPECT_GT(report.stable_waiters, 50);
}

TEST(Adversary, QueueAlgorithmEscapesViaStrongerPrimitives) {
  // dsm-queue-fai uses Fetch-And-Increment: out of Theorem 6.2's scope. The
  // adversary detects this and falls back to the lenient measurement, under
  // which the algorithm exhibits its Section 7 bounds (O(k) signaler).
  const int n = 32;
  SignalingAdversary adv(
      [](SharedMemory& m) { return std::make_unique<DsmQueueSignal>(m); },
      dsm_config(n));
  const auto report = adv.run();
  EXPECT_FALSE(report.in_scope);
  EXPECT_EQ(report.construction, Construction::kLenient);
  EXPECT_TRUE(report.stabilized) << report.to_string();
  EXPECT_FALSE(report.spec_violation) << report.violation_what;
  // Signaler still pays ~k (it must deliver), but every waiter is O(1) and
  // amortized total stays constant — the queue closes the gap as claimed.
  EXPECT_GE(report.signaler_rmrs,
            static_cast<std::uint64_t>(report.stable_waiters));
}

TEST(Adversary, MeasureOnlyModeDeliversToEveryone) {
  AdversaryConfig c = dsm_config(48);
  c.erase_during_chase = false;
  SignalingAdversary adv(
      [](SharedMemory& m) {
        return std::make_unique<DsmRegistrationSignal>(m, 10);
      },
      c);
  const auto report = adv.run();
  EXPECT_TRUE(report.stabilized);
  EXPECT_FALSE(report.spec_violation) << report.violation_what;
  // No erasure: all stable waiters survive and each polls true at the end.
  EXPECT_EQ(report.waiters_delivered, report.stable_waiters);
  // Section 7's simplified bound: the signaler wrote each waiter's module.
  EXPECT_GE(report.signaler_rmrs,
            static_cast<std::uint64_t>(report.stable_waiters));
}

TEST(Adversary, BrokenAlgorithmConvictedBySpecCheck) {
  AdversaryConfig c = dsm_config(16);
  c.erase_during_chase = false;  // leave waiters alive so their polls betray
  SignalingAdversary adv(
      [](SharedMemory& m) { return std::make_unique<BrokenLocalSignal>(m); },
      c);
  const auto report = adv.run();
  ASSERT_TRUE(report.stabilized);
  EXPECT_TRUE(report.spec_violation) << report.to_string();
}

TEST(Adversary, CasAlgorithmDetectedOutOfScope) {
  const int n = 24;
  SignalingAdversary adv(
      [](SharedMemory& m) {
        return std::make_unique<CasRegistrationSignal>(m);
      },
      dsm_config(n));
  const auto report = adv.run();
  // CAS is outside the direct construction (Corollary 6.14 handles it via
  // the read/write transformation, exercised in primitives tests / E6).
  EXPECT_FALSE(report.in_scope);
  EXPECT_FALSE(report.spec_violation) << report.violation_what;
}

TEST(Adversary, StrictConstructionKeepsHistoriesRegular) {
  const int n = 48;
  SignalingAdversary adv(
      [n](SharedMemory& m) {
        return std::make_unique<DsmRegistrationSignal>(
            m, static_cast<ProcId>(n - 2));
      },
      dsm_config(n));
  const auto report = adv.run();
  for (const RoundStats& rs : report.round_stats) {
    EXPECT_TRUE(rs.regular) << "round " << rs.round << " irregular";
    EXPECT_LE(rs.finished, rs.round);  // Definition 6.9 property 1
    EXPECT_LE(rs.max_active_rmrs, static_cast<std::uint64_t>(rs.round))
        << "Definition 6.9 property 3";
  }
}

TEST(Adversary, StabilityProbeBudgetInsensitive) {
  // DESIGN.md substitution 4: stability (Definition 6.8) is semi-decided by
  // a bounded solo probe. The classification must not depend on the budget
  // once it covers a couple of full Poll() calls — same stable count, same
  // forced cost across probe settings.
  const int n = 48;
  std::vector<std::uint64_t> stable_counts;
  std::vector<std::uint64_t> forced;
  for (const std::uint64_t probe : {24u, 64u, 256u, 1024u}) {
    AdversaryConfig c = dsm_config(n);
    c.probe_steps = probe;
    SignalingAdversary adv(
        [n](SharedMemory& m) {
          return std::make_unique<DsmRegistrationSignal>(
              m, static_cast<ProcId>(n - 2));
        },
        c);
    const auto report = adv.run();
    ASSERT_TRUE(report.stabilized) << "probe=" << probe;
    stable_counts.push_back(
        static_cast<std::uint64_t>(report.stable_waiters));
    forced.push_back(report.signaler_rmrs);
  }
  for (std::size_t i = 1; i < stable_counts.size(); ++i) {
    EXPECT_EQ(stable_counts[i], stable_counts[0]);
    EXPECT_EQ(forced[i], forced[0]);
  }
}

TEST(Adversary, SignalerRmrsScaleWithN) {
  // The headline series of experiment E2 in miniature: forced signaler cost
  // grows ~linearly in N for the read/write algorithm, flat in CC.
  std::vector<std::uint64_t> dsm_cost;
  for (const int n : {16, 32, 64}) {
    SignalingAdversary adv(
        [n](SharedMemory& m) {
          return std::make_unique<DsmRegistrationSignal>(
              m, static_cast<ProcId>(n - 2));
        },
        dsm_config(n));
    dsm_cost.push_back(adv.run().signaler_rmrs);
  }
  EXPECT_GT(dsm_cost[1], dsm_cost[0]);
  EXPECT_GT(dsm_cost[2], dsm_cost[1]);
  // Roughly linear: doubling N should not less-than-1.5x the cost.
  EXPECT_GE(static_cast<double>(dsm_cost[2]),
            1.5 * static_cast<double>(dsm_cost[1]));
}

}  // namespace
}  // namespace rmrsim
