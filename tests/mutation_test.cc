// Mutation tests: the Section 7 algorithms each contain one load-bearing
// instruction ordering (register FIRST, then check the global flag — the
// race the paper's prose calls out: "we must handle correctly the race
// condition when waiters register while the signaler is calling Signal()").
// Here we build the mutated (wrong-order) variants and demand that the
// exhaustive explorer FINDS their violating schedules — proving both that
// the order matters and that our verification tooling can tell.
#include <gtest/gtest.h>

#include <memory>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"
#include "signaling/checker.h"
#include "verify/explorer.h"

namespace rmrsim {
namespace {

// DsmRegistrationSignal with the first-call order flipped: check S BEFORE
// registering. Wrong: the signaler can sweep between our S read (false) and
// our registration, completing Signal() while knowing nothing about us; our
// next polls spin on a V that will never be written... and the *first* call
// already returned a legal false. The violation appears at the second
// completed poll after Signal() completed.
class RacyRegistrationSignal final : public SignalingAlgorithm {
 public:
  RacyRegistrationSignal(SharedMemory& mem, ProcId signaler)
      : signaler_(signaler), s_(mem.allocate_global(0, "S")) {
    for (ProcId i = 0; i < mem.nprocs(); ++i) {
      reg_.push_back(
          mem.allocate_local(signaler_, 0, "Reg[" + std::to_string(i) + "]"));
      v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
      first_done_.push_back(
          mem.allocate_local(i, 0, "First[" + std::to_string(i) + "]"));
    }
  }

  SubTask<bool> poll(ProcCtx& ctx) override {
    const ProcId me = ctx.id();
    const Word done = co_await ctx.read(first_done_[me]);
    if (done == 0) {
      const Word s = co_await ctx.read(s_);  // BUG: S checked before...
      co_await ctx.write(reg_[me], 1);       // ...registering
      co_await ctx.write(first_done_[me], 1);
      co_return s != 0;
    }
    const Word v = co_await ctx.read(v_[me]);
    co_return v != 0;
  }

  SubTask<void> signal(ProcCtx& ctx) override {
    co_await ctx.write(s_, 1);
    for (ProcId i = 0; i < static_cast<ProcId>(reg_.size()); ++i) {
      const Word r = co_await ctx.read(reg_[i]);
      if (r != 0) co_await ctx.write(v_[i], 1);
    }
  }

  std::string_view name() const override { return "racy-registration"; }

 private:
  ProcId signaler_;
  VarId s_;
  std::vector<VarId> reg_;
  std::vector<VarId> v_;
  std::vector<VarId> first_done_;
};

// The signaler side of the single-waiter algorithm with ITS order flipped:
// read W before writing S. Wrong: the waiter can register and read S = 0
// (legal false) after we read W = NIL but before we set S — then nobody
// ever writes its V, and its next poll falsely returns false after our
// Signal() completed.
class RacySingleWaiterSignal final : public SignalingAlgorithm {
 public:
  explicit RacySingleWaiterSignal(SharedMemory& mem)
      : w_(mem.allocate_global(-1, "W")), s_(mem.allocate_global(0, "S")) {
    for (ProcId i = 0; i < mem.nprocs(); ++i) {
      v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
      registered_.push_back(
          mem.allocate_local(i, 0, "Reg[" + std::to_string(i) + "]"));
    }
  }

  SubTask<bool> poll(ProcCtx& ctx) override {
    const ProcId me = ctx.id();
    const Word reg = co_await ctx.read(registered_[me]);
    if (reg == 0) {
      co_await ctx.write(w_, me);
      co_await ctx.write(registered_[me], 1);
      const Word s = co_await ctx.read(s_);
      co_return s != 0;
    }
    const Word v = co_await ctx.read(v_[me]);
    co_return v != 0;
  }

  SubTask<void> signal(ProcCtx& ctx) override {
    const Word w = co_await ctx.read(w_);  // BUG: W read before...
    co_await ctx.write(s_, 1);             // ...publishing S
    if (w != -1) {
      co_await ctx.write(v_[static_cast<ProcId>(w)], 1);
    }
  }

  std::string_view name() const override { return "racy-single-waiter"; }

 private:
  VarId w_;
  VarId s_;
  std::vector<VarId> v_;
  std::vector<VarId> registered_;
};

template <typename Alg, typename... Args>
ExploreBuilder builder(int n_waiters, int polls, Args... args) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(n_waiters + 1);
    auto alg = std::make_shared<Alg>(*inst.mem, args...);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreChecker polling_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h); v.has_value()) return v->what;
    return std::nullopt;
  };
}

TEST(Mutation, RacyRegistrationHasAViolatingSchedule) {
  const auto r = explore_all_schedules(
      builder<RacyRegistrationSignal>(1, 2, ProcId{1}), polling_checker(),
      {.max_depth = 24, .max_nodes = 2'000'000});
  ASSERT_TRUE(r.violation.has_value())
      << "the register-before-check order is load-bearing; flipping it must "
         "be detectable";
  EXPECT_FALSE(r.violating_schedule.empty());
}

TEST(Mutation, RacySingleWaiterHasAViolatingSchedule) {
  const auto r = explore_all_schedules(
      builder<RacySingleWaiterSignal>(1, 2), polling_checker(),
      {.max_depth = 24, .max_nodes = 2'000'000});
  ASSERT_TRUE(r.violation.has_value())
      << "the S-before-W signal order is load-bearing; flipping it must be "
         "detectable";
}

}  // namespace
}  // namespace rmrsim
