// Mutation tests: each subject algorithm contains one load-bearing
// instruction ordering (register FIRST, then check the global flag — the
// race the paper's prose calls out: "we must handle correctly the race
// condition when waiters register while the signaler is calling Signal()").
// Here we build mutated (wrong-order) variants and demand that the
// explorers FIND their violating schedules — proving both that the order
// matters and that our verification tooling can tell.
//
// Every schedule-level mutant is convicted twice — by the naive exhaustive
// explorer and by the DPOR engine — and the DPOR counterexample is then
// shrunk. The shrunk witness must still reproduce the exact violation and
// must be no longer than the naive explorer's counterexample, pinning both
// the reduction's completeness and the shrinker's usefulness. The
// crash-conditional mutant (BrokenRecoveryLock) is convicted by the
// crash x schedule product, with the correct RecoverableSpinLock passing
// the identical sweep as the differential control.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"
#include "mutex/recoverable_lock.h"
#include "sched/schedulers.h"
#include "signaling/algorithm.h"
#include "signaling/broken.h"
#include "signaling/checker.h"
#include "verify/dpor.h"
#include "verify/explorer.h"
#include "verify/shrink.h"

namespace rmrsim {
namespace {

// DsmRegistrationSignal with the first-call order flipped: check S BEFORE
// registering. Wrong: the signaler can sweep between our S read (false) and
// our registration, completing Signal() while knowing nothing about us; our
// next polls spin on a V that will never be written... and the *first* call
// already returned a legal false. The violation appears at the second
// completed poll after Signal() completed.
class RacyRegistrationSignal final : public SignalingAlgorithm {
 public:
  RacyRegistrationSignal(SharedMemory& mem, ProcId signaler)
      : signaler_(signaler), s_(mem.allocate_global(0, "S")) {
    for (ProcId i = 0; i < mem.nprocs(); ++i) {
      reg_.push_back(
          mem.allocate_local(signaler_, 0, "Reg[" + std::to_string(i) + "]"));
      v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
      first_done_.push_back(
          mem.allocate_local(i, 0, "First[" + std::to_string(i) + "]"));
    }
  }

  SubTask<bool> poll(ProcCtx& ctx) override {
    const ProcId me = ctx.id();
    const Word done = co_await ctx.read(first_done_[me]);
    if (done == 0) {
      const Word s = co_await ctx.read(s_);  // BUG: S checked before...
      co_await ctx.write(reg_[me], 1);       // ...registering
      co_await ctx.write(first_done_[me], 1);
      co_return s != 0;
    }
    const Word v = co_await ctx.read(v_[me]);
    co_return v != 0;
  }

  SubTask<void> signal(ProcCtx& ctx) override {
    co_await ctx.write(s_, 1);
    for (ProcId i = 0; i < static_cast<ProcId>(reg_.size()); ++i) {
      const Word r = co_await ctx.read(reg_[i]);
      if (r != 0) co_await ctx.write(v_[i], 1);
    }
  }

  std::string_view name() const override { return "racy-registration"; }

 private:
  ProcId signaler_;
  VarId s_;
  std::vector<VarId> reg_;
  std::vector<VarId> v_;
  std::vector<VarId> first_done_;
};

// The signaler side of the single-waiter algorithm with ITS order flipped:
// read W before writing S. Wrong: the waiter can register and read S = 0
// (legal false) after we read W = NIL but before we set S — then nobody
// ever writes its V, and its next poll falsely returns false after our
// Signal() completed.
class RacySingleWaiterSignal final : public SignalingAlgorithm {
 public:
  explicit RacySingleWaiterSignal(SharedMemory& mem)
      : w_(mem.allocate_global(-1, "W")), s_(mem.allocate_global(0, "S")) {
    for (ProcId i = 0; i < mem.nprocs(); ++i) {
      v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
      registered_.push_back(
          mem.allocate_local(i, 0, "Reg[" + std::to_string(i) + "]"));
    }
  }

  SubTask<bool> poll(ProcCtx& ctx) override {
    const ProcId me = ctx.id();
    const Word reg = co_await ctx.read(registered_[me]);
    if (reg == 0) {
      co_await ctx.write(w_, me);
      co_await ctx.write(registered_[me], 1);
      const Word s = co_await ctx.read(s_);
      co_return s != 0;
    }
    const Word v = co_await ctx.read(v_[me]);
    co_return v != 0;
  }

  SubTask<void> signal(ProcCtx& ctx) override {
    const Word w = co_await ctx.read(w_);  // BUG: W read before...
    co_await ctx.write(s_, 1);             // ...publishing S
    if (w != -1) {
      co_await ctx.write(v_[static_cast<ProcId>(w)], 1);
    }
  }

  std::string_view name() const override { return "racy-single-waiter"; }

 private:
  VarId w_;
  VarId s_;
  std::vector<VarId> v_;
  std::vector<VarId> registered_;
};

template <typename Alg, typename... Args>
ExploreBuilder builder(int n_waiters, int polls, Args... args) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(n_waiters + 1);
    auto alg = std::make_shared<Alg>(*inst.mem, args...);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

// Like `builder`, but each waiter gets its own poll budget.
template <typename Alg, typename... Args>
ExploreBuilder mixed_polls_builder(std::vector<int> waiter_polls,
                                   Args... args) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(static_cast<int>(waiter_polls.size()) + 1);
    auto alg = std::make_shared<Alg>(*inst.mem, args...);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (const int polls : waiter_polls) {
      programs.emplace_back(
          [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreChecker polling_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h); v.has_value()) return v->what;
    return std::nullopt;
  };
}

// Convicts a mutant with both explorers and shrinks the DPOR witness.
// Asserted invariants: both find a violation; the shrunk schedule still
// reproduces the DPOR violation's exact message; the shrunk schedule is no
// longer than the naive explorer's counterexample.
void convict(const ExploreBuilder& build, const ExploreChecker& check,
             const ExploreOptions& naive_options,
             const DporOptions& dpor_options) {
  const ExploreResult naive =
      explore_all_schedules(build, check, naive_options);
  ASSERT_TRUE(naive.violation.has_value())
      << "mutant not convicted by the naive explorer";
  ASSERT_FALSE(naive.violating_schedule.empty());

  const ExploreResult dpor = explore_dpor(build, check, dpor_options);
  ASSERT_TRUE(dpor.violation.has_value())
      << "mutant not convicted by the DPOR explorer (naive found: "
      << *naive.violation << ")";
  ASSERT_FALSE(dpor.violating_schedule.empty());

  const auto shrunk =
      shrink_counterexample(build, check, dpor.violating_schedule);
  ASSERT_TRUE(shrunk.has_value())
      << "DPOR counterexample did not reproduce on replay";
  EXPECT_EQ(shrunk->message, *dpor.violation);
  EXPECT_LE(shrunk->schedule.size(), naive.violating_schedule.size())
      << "shrunk witness longer than the naive counterexample";

  // The shrunk schedule is a real witness: replay it once more.
  const auto replayed = reproduce_violation(build, check, shrunk->schedule);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->first, shrunk->message);
}

TEST(Mutation, RacyRegistrationConvictedAndShrunk) {
  convict(builder<RacyRegistrationSignal>(1, 2, ProcId{1}), polling_checker(),
          {.max_depth = 24, .max_nodes = 2'000'000},
          {.max_depth = 24, .max_nodes = 2'000'000});
}

TEST(Mutation, RacySingleWaiterConvictedAndShrunk) {
  convict(builder<RacySingleWaiterSignal>(1, 2), polling_checker(),
          {.max_depth = 24, .max_nodes = 2'000'000},
          {.max_depth = 24, .max_nodes = 2'000'000});
}

TEST(Mutation, LateFlagConvictedAndShrunk) {
  // Signal() sweeps before writing S: the waiter registers after the sweep
  // passed it, reads S = 0 (legal false), and is never delivered — its
  // second poll returns false after Signal() completed.
  convict(builder<LateFlagSignal>(1, 2, ProcId{1}), polling_checker(),
          {.max_depth = 24, .max_nodes = 2'000'000},
          {.max_depth = 24, .max_nodes = 2'000'000});
}

TEST(Mutation, DroppedRecheckCasConvictedAndShrunk) {
  // Two waiters race their single-attempt pushes; the loser proceeds as if
  // registered. The winner (one poll) is process 0 and the loser (two
  // polls — the second reads a V no sweep will write) is process 1: the
  // naive DFS's leftmost subtrees then run the winner's push to its CAS
  // first, so the racing deviation (loser reads Head before that CAS) is
  // reached after thousands of nodes instead of after the millions-deep
  // "loser registers cleanly first" subtree it would face the other way
  // round.
  convict(mixed_polls_builder<DroppedRecheckCasSignal>({1, 2}),
          polling_checker(), {.max_depth = 26, .max_nodes = 20'000'000},
          {.max_depth = 26, .max_nodes = 2'000'000});
}

// ---------------------------------------------------------------------------
// BrokenRecoveryLock: crash-conditional, so schedule exploration alone must
// acquit it and the crash x schedule product must convict it.
// ---------------------------------------------------------------------------

// A recoverable worker with a wide critical section: one occupancy slot
// write, several spacer reads, then the slot clear. The spacers keep the
// holder inside the CS long enough for a recovering victim's bogus free —
// plus the thief's doorway and CAS — to land while the slot is still up.
ProcTask slot_mutex_worker(ProcCtx& ctx, RecoverableMutexAlgorithm* lock,
                           VarId slot, VarId spacer) {
  co_await lock->recover(ctx);
  co_await lock->acquire(ctx);
  co_await ctx.write(slot, 1);
  for (int i = 0; i < 6; ++i) co_await ctx.read(spacer);
  co_await ctx.write(slot, 0);
  co_await lock->release(ctx);
}

template <typename Lock>
ExploreBuilder slot_mutex_builder(int nprocs) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(nprocs);
    const VarId spacer = inst.mem->allocate_global(0, "spacer");
    std::vector<VarId> slots;
    for (ProcId p = 0; p < nprocs; ++p) {
      slots.push_back(inst.mem->allocate_local(
          p, 0, "slot[" + std::to_string(p) + "]"));
    }
    auto lock = std::make_shared<Lock>(*inst.mem);
    std::vector<Program> programs;
    RecoverableMutexAlgorithm* l = lock.get();
    for (ProcId p = 0; p < nprocs; ++p) {
      const VarId slot = slots[p];
      programs.emplace_back([l, slot, spacer](ProcCtx& ctx) {
        return slot_mutex_worker(ctx, l, slot, spacer);
      });
    }
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = lock;
    return inst;
  };
}

// Crash-aware occupancy checker over the slot writes: a crash aborts the
// victim's passage, so its raised slot stops counting (the stale 1 in
// memory is exactly what a real post-crash state looks like). Two slots
// raised by live processes at once = two processes in the CS.
ExploreChecker slot_checker(std::vector<VarId> slots) {
  return [slots = std::move(slots)](
             const History& h) -> std::optional<std::string> {
    std::vector<bool> up(slots.size(), false);
    int raised = 0;
    for (const StepRecord& r : h.records()) {
      if (r.kind == StepRecord::Kind::kEvent) {
        if (r.event == EventKind::kCrash && r.proc >= 0 &&
            r.proc < static_cast<ProcId>(slots.size()) && up[r.proc]) {
          up[r.proc] = false;
          --raised;
        }
        continue;
      }
      if (r.op.type != OpType::kWrite) continue;
      for (std::size_t p = 0; p < slots.size(); ++p) {
        if (r.op.var != slots[p]) continue;
        if (r.op.arg0 != 0 && !up[p]) {
          up[p] = true;
          if (++raised >= 2) {
            return "two processes in the critical section simultaneously";
          }
        } else if (r.op.arg0 == 0 && up[p]) {
          up[p] = false;
          --raised;
        }
      }
    }
    return std::nullopt;
  };
}

// Variable ids are deterministic (allocation order), so one throwaway build
// yields the slot ids every rebuilt world will use.
std::vector<VarId> probe_slot_ids(const ExploreBuilder& build, int nprocs) {
  const ExploreInstance inst = build();
  std::vector<VarId> slots;
  for (ProcId p = 0; p < nprocs; ++p) {
    // Allocation order in slot_mutex_builder: spacer first (VarId 0), then
    // one slot per process.
    slots.push_back(static_cast<VarId>(1 + p));
  }
  EXPECT_EQ(inst.mem->nprocs(), nprocs);
  return slots;
}

CrashProductOptions slot_product_options() {
  CrashProductOptions o;
  o.explore.max_depth = 40;
  o.explore.max_nodes = 2'000'000;
  o.max_schedules = 1024;
  // Recover the victim immediately: its (broken) recovery section then runs
  // concurrently with whatever the survivors were mid-flight on.
  o.recover_after = 0;
  o.max_steps = 100'000;
  return o;
}

// Replays `prefix`, crashes + immediately recovers the victim, drives the
// run fairly, and returns the final-history verdict. The reproduction
// primitive for crash-product counterexamples (the analogue of
// reproduce_violation for the crash axis).
std::optional<std::string> reproduce_crash_violation(
    const ExploreBuilder& build, const ExploreChecker& check, ProcId victim,
    const std::vector<ProcId>& prefix) {
  ExploreInstance inst = replay_macro_schedule(build, prefix);
  Simulation& sim = *inst.sim;
  if (sim.terminated(victim)) return std::nullopt;
  sim.crash(victim);
  sim.recover(victim);
  fair_drive(sim, 100'000);
  return check(sim.history());
}

TEST(Mutation, BrokenRecoveryLockConvictedByCrashProduct) {
  constexpr int kProcs = 2;
  // The victim must be process 0: the product sweeps crash points along the
  // LEX-LEAST representatives of the reduced schedule classes, and those
  // representatives front-load the low-id process's failed CAS spins right
  // after the other process's winning CAS — i.e. with the winner's critical
  // section still entirely ahead. Crashing 0 at such a spin leaves want[0]
  // raised while 1 holds; 0's bogus recovery frees the lock and 0 steals
  // the CS while 1's slot is still up. (With victim 1 the representatives
  // place 1's spins after 0 has already cleared its slot, and every crash
  // point is harmlessly late — a real coverage property of reduced-schedule
  // sweeping, not an accident.)
  constexpr ProcId kVictim = 0;
  const auto build = slot_mutex_builder<BrokenRecoveryLock>(kProcs);
  const auto check = slot_checker(probe_slot_ids(build, kProcs));

  const CrashProductResult r =
      sweep_crash_product(build, check, kVictim, slot_product_options());

  // Crash-conditional: exploration alone (no crashes) must acquit it...
  EXPECT_FALSE(r.schedule_violation.has_value())
      << *r.schedule_violation << " — the mutant is supposed to be "
      << "indistinguishable from the correct lock in crash-free runs";
  // ...and the crash sweep along explored schedules must convict it.
  ASSERT_TRUE(r.sweep.violation.has_value())
      << "crash x schedule product failed to convict the broken recovery "
      << "(swept " << r.schedules_swept << " schedules, "
      << r.sweep.crash_points << " crash points)";
  ASSERT_FALSE(r.violating_schedule.empty());
  ASSERT_GE(r.sweep.violating_crash_point, 0);

  // The product's counterexample is a (schedule prefix, crash point) pair;
  // check it reproduces, then shrink the prefix greedily: drop steps while
  // the crash still reproduces the violation.
  std::vector<ProcId> prefix(
      r.violating_schedule.begin(),
      r.violating_schedule.begin() + r.sweep.violating_crash_point);
  ASSERT_EQ(reproduce_crash_violation(build, check, kVictim, prefix),
            r.sweep.violation);
  for (std::size_t i = 0; i < prefix.size();) {
    std::vector<ProcId> cand = prefix;
    cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
    if (reproduce_crash_violation(build, check, kVictim, cand) ==
        r.sweep.violation) {
      prefix = std::move(cand);  // the element now at i is new: retry slot i
    } else {
      ++i;
    }
  }
  EXPECT_LE(prefix.size(),
            static_cast<std::size_t>(r.sweep.violating_crash_point));
  ASSERT_EQ(reproduce_crash_violation(build, check, kVictim, prefix),
            r.sweep.violation);
}

TEST(Mutation, CorrectRecoverableLockPassesTheSameCrashProduct) {
  // Differential control: the correct lock survives the identical sweep.
  constexpr int kProcs = 2;
  constexpr ProcId kVictim = 0;
  const auto build = slot_mutex_builder<RecoverableSpinLock>(kProcs);
  const auto check = slot_checker(probe_slot_ids(build, kProcs));

  const CrashProductResult r =
      sweep_crash_product(build, check, kVictim, slot_product_options());

  EXPECT_FALSE(r.schedule_violation.has_value());
  EXPECT_FALSE(r.sweep.violation.has_value())
      << *r.sweep.violation << " at crash point "
      << r.sweep.violating_crash_point;
  EXPECT_GT(r.schedules_swept, 0);
  EXPECT_GT(r.sweep.completed, 0);
}

}  // namespace
}  // namespace rmrsim
