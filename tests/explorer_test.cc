// Exhaustive small-configuration verification: every memory-op interleaving
// up to a depth bound, not a random sample. Checkers are phrased over
// memory-op records (occupancy gauges, read results) so macro stepping
// (branching on memory operations only) stays complete for them; see
// verify/explorer.h.
#include <gtest/gtest.h>

#include <memory>

#include "gme/session_gme.h"
#include "memory/cc_model.h"
#include "mutex/mcs_lock.h"
#include "mutex/simple_locks.h"
#include "mutex/ya_lock.h"
#include "signaling/broken.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_registration.h"
#include "signaling/dsm_single_waiter.h"
#include "verify/explorer.h"

namespace rmrsim {
namespace {

std::string schedule_string(const std::vector<ProcId>& s) {
  std::string out;
  for (const ProcId p : s) out += std::to_string(p);
  return out;
}

// ---------------------------------------------------------------------------
// Signaling: every interleaving of small waiter/signaler mixes.
// ---------------------------------------------------------------------------

template <typename Alg, typename... Args>
ExploreBuilder signaling_builder(bool cc, int n_waiters, int polls,
                                 Args... args) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = cc ? make_cc(n_waiters + 1) : make_dsm(n_waiters + 1);
    auto alg = std::make_shared<Alg>(*inst.mem, args...);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreChecker polling_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h); v.has_value()) return v->what;
    return std::nullopt;
  };
}

TEST(ExhaustiveSignaling, CcFlagAllSchedules) {
  for (const bool cc : {true, false}) {
    const auto r = explore_all_schedules(
        signaling_builder<CcFlagSignal>(cc, 2, 2), polling_checker(),
        {.max_depth = 16, .max_nodes = 500'000});
    EXPECT_FALSE(r.violation.has_value())
        << *r.violation << " schedule=" << schedule_string(r.violating_schedule);
    EXPECT_TRUE(r.exhausted);
    EXPECT_GT(r.complete_schedules, 0u);
    EXPECT_EQ(r.truncated_schedules, 0u);
  }
}

TEST(ExhaustiveSignaling, RegistrationOneWaiterAllSchedules) {
  const auto r = explore_all_schedules(
      signaling_builder<DsmRegistrationSignal>(false, 1, 2, ProcId{1}),
      polling_checker(), {.max_depth = 24, .max_nodes = 500'000});
  EXPECT_FALSE(r.violation.has_value())
      << *r.violation << " schedule=" << schedule_string(r.violating_schedule);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.truncated_schedules, 0u);
}

TEST(ExhaustiveSignaling, RegistrationTwoWaitersAllSchedules) {
  const auto r = explore_all_schedules(
      signaling_builder<DsmRegistrationSignal>(false, 2, 1, ProcId{2}),
      polling_checker(), {.max_depth = 24, .max_nodes = 10'000'000});
  EXPECT_FALSE(r.violation.has_value())
      << *r.violation << " schedule=" << schedule_string(r.violating_schedule);
  EXPECT_TRUE(r.exhausted);
}

TEST(ExhaustiveSignaling, SingleWaiterAllSchedules) {
  const auto r = explore_all_schedules(
      signaling_builder<DsmSingleWaiterSignal>(false, 1, 3),
      polling_checker(), {.max_depth = 24, .max_nodes = 500'000});
  EXPECT_FALSE(r.violation.has_value())
      << *r.violation << " schedule=" << schedule_string(r.violating_schedule);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.truncated_schedules, 0u);
}

TEST(ExhaustiveSignaling, BrokenAlgorithmHasAViolatingSchedule) {
  // Sharpness: exhaustive search must FIND the broken algorithm's bad
  // schedule (signaler first, then a waiter polls false).
  const auto r = explore_all_schedules(
      signaling_builder<BrokenLocalSignal>(false, 1, 1), polling_checker(),
      {.max_depth = 16, .max_nodes = 100'000});
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_FALSE(r.violating_schedule.empty());
}

// ---------------------------------------------------------------------------
// Mutual exclusion, memory-level: an occupancy gauge inside the CS. The
// gauge FAA's recorded result is the number of peers already inside — any
// nonzero result is a violation, visible in every macro-stepped schedule.
// ---------------------------------------------------------------------------

ProcTask gauge_mutex_worker(ProcCtx& ctx, MutexAlgorithm* lock, VarId gauge,
                            int passages) {
  for (int i = 0; i < passages; ++i) {
    co_await lock->acquire(ctx);
    co_await ctx.faa(gauge, 1);
    co_await ctx.faa(gauge, -1);
    co_await lock->release(ctx);
  }
}

template <typename Lock>
ExploreBuilder gauge_mutex_builder(int nprocs, int passages, VarId* gauge_out) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(nprocs);
    const VarId gauge = inst.mem->allocate_global(0, "cs-gauge");
    *gauge_out = gauge;
    auto lock = std::make_shared<Lock>(*inst.mem);
    std::vector<Program> programs;
    MutexAlgorithm* l = lock.get();
    for (int i = 0; i < nprocs; ++i) {
      programs.emplace_back([l, gauge, passages](ProcCtx& ctx) {
        return gauge_mutex_worker(ctx, l, gauge, passages);
      });
    }
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = lock;
    return inst;
  };
}

ExploreChecker gauge_checker(const VarId* gauge) {
  return [gauge](const History& h) -> std::optional<std::string> {
    for (const StepRecord& r : h.records()) {
      if (r.kind == StepRecord::Kind::kMemOp && r.op.type == OpType::kFaa &&
          r.op.var == *gauge && r.op.arg0 == 1 && r.outcome.result != 0) {
        return "two processes inside the critical section (gauge=" +
               std::to_string(r.outcome.result + 1) + ")";
      }
    }
    return std::nullopt;
  };
}

TEST(ExhaustiveMutex, TasLockTwoProcsAllSchedulesToDepth) {
  VarId gauge = kNoVar;
  const auto r = explore_all_schedules(
      gauge_mutex_builder<TasLock>(2, 1, &gauge), gauge_checker(&gauge),
      {.max_depth = 17, .max_nodes = 2'000'000});
  EXPECT_FALSE(r.violation.has_value())
      << *r.violation << " schedule=" << schedule_string(r.violating_schedule);
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.complete_schedules, 0u);
}

TEST(ExhaustiveMutex, McsTwoProcsAllSchedulesToDepth) {
  VarId gauge = kNoVar;
  const auto r = explore_all_schedules(
      gauge_mutex_builder<McsLock>(2, 1, &gauge), gauge_checker(&gauge),
      {.max_depth = 18, .max_nodes = 2'000'000});
  EXPECT_FALSE(r.violation.has_value())
      << *r.violation << " schedule=" << schedule_string(r.violating_schedule);
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.complete_schedules, 0u);
}

TEST(ExhaustiveMutex, YangAndersonTwoProcsAllSchedulesToDepth) {
  VarId gauge = kNoVar;
  const auto r = explore_all_schedules(
      gauge_mutex_builder<YangAndersonLock>(2, 1, &gauge),
      gauge_checker(&gauge), {.max_depth = 18, .max_nodes = 2'000'000});
  EXPECT_FALSE(r.violation.has_value())
      << *r.violation << " schedule=" << schedule_string(r.violating_schedule);
  EXPECT_TRUE(r.exhausted);
}

TEST(ExhaustiveMutex, NoLockViolationFound) {
  class NoLock final : public MutexAlgorithm {
   public:
    explicit NoLock(SharedMemory&) {}
    SubTask<void> acquire(ProcCtx& ctx) override { co_await ctx.mark(0); }
    SubTask<void> release(ProcCtx& ctx) override { co_await ctx.mark(1); }
    std::string_view name() const override { return "no-lock"; }
  };
  VarId gauge = kNoVar;
  const auto r = explore_all_schedules(
      gauge_mutex_builder<NoLock>(2, 1, &gauge), gauge_checker(&gauge),
      {.max_depth = 12, .max_nodes = 100'000});
  ASSERT_TRUE(r.violation.has_value());
}

// ---------------------------------------------------------------------------
// GME, memory-level: one gauge per session; after entering session s a
// process bumps gauge[s] and reads gauge[1-s], which must be zero.
// ---------------------------------------------------------------------------

TEST(ExhaustiveGme, SessionGmeTwoProcsAllSchedulesToDepth) {
  VarId gauges[2] = {kNoVar, kNoVar};
  const auto build = [&]() {
    ExploreInstance inst;
    inst.mem = make_dsm(2);
    gauges[0] = inst.mem->allocate_global(0, "g0");
    gauges[1] = inst.mem->allocate_global(0, "g1");
    auto alg = std::make_shared<SessionGme>(
        *inst.mem, std::make_unique<TasLock>(*inst.mem));
    std::vector<Program> programs;
    GmeAlgorithm* g = alg.get();
    const VarId g0 = gauges[0];
    const VarId g1 = gauges[1];
    for (int i = 0; i < 2; ++i) {
      programs.emplace_back([g, i, g0, g1](ProcCtx& ctx) -> ProcTask {
        const Word s = i;
        const VarId mine = s == 0 ? g0 : g1;
        const VarId other = s == 0 ? g1 : g0;
        co_await g->enter(ctx, s);
        co_await ctx.faa(mine, 1);
        co_await ctx.read(other);  // recorded; must be 0
        co_await ctx.faa(mine, -1);
        co_await g->exit(ctx);
      });
    }
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
  const auto check = [&](const History& h) -> std::optional<std::string> {
    for (const StepRecord& r : h.records()) {
      if (r.kind == StepRecord::Kind::kMemOp && r.op.type == OpType::kRead &&
          (r.op.var == gauges[0] || r.op.var == gauges[1]) &&
          r.outcome.result != 0) {
        return "two sessions share the critical section";
      }
    }
    return std::nullopt;
  };
  // The session lock's full run is ~24 macro steps per process; depth 20
  // exhausts every interleaving through the entire entry race (the window
  // where a safety bug would live) while truncating the quiet tails.
  const auto r = explore_all_schedules(
      build, check, {.max_depth = 20, .max_nodes = 3'000'000});
  EXPECT_FALSE(r.violation.has_value())
      << *r.violation << " schedule=" << schedule_string(r.violating_schedule);
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.truncated_schedules, 0u);
}

}  // namespace
}  // namespace rmrsim
