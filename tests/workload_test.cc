// Workload engine tests: the trace codecs' strictness (every malformation
// rejected loudly, with a location), generator and replay determinism, the
// address-map policies' DSM pricing, the cycle-cost override, and the
// fleet/write-buffer reset path (same trace after reset() must produce
// byte-identical metrics).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "coherence/fleet.h"
#include "coherence/write_buffer.h"
#include "memory/shared_memory.h"
#include "metrics/publish.h"
#include "metrics/registry.h"
#include "workload/generators.h"
#include "workload/replay.h"
#include "workload/trace.h"

namespace rmrsim {
namespace {

/// Runs `fn`, which must throw std::logic_error, and returns the message.
template <typename Fn>
std::string error_of(Fn&& fn) {
  try {
    fn();
  } catch (const std::logic_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::logic_error, got none";
  return "";
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

Trace small_trace() {
  return parse_trace_text(
      "rmrsim-trace v1 procs=2 ops=5\n"
      "# a comment\n"
      "0 0 WR 16 7\n"
      "1 0 RD 16\n"
      "0 1 CAS 16 7 9\n"
      "1 1 FENCE\n"
      "0 2 FAA 32 3\n");
}

// ---- codecs ------------------------------------------------------------

TEST(TraceText, ParsesAllForms) {
  const Trace t = small_trace();
  EXPECT_EQ(t.nprocs, 2);
  ASSERT_EQ(t.ops.size(), 5u);
  EXPECT_EQ(t.ops[0].kind, TraceOpKind::kWrite);
  EXPECT_EQ(t.ops[0].addr, 16u);
  EXPECT_EQ(t.ops[0].arg0, 7);
  EXPECT_EQ(t.ops[2].kind, TraceOpKind::kCas);
  EXPECT_EQ(t.ops[2].arg1, 9);
  EXPECT_EQ(t.ops[3].kind, TraceOpKind::kFence);
  EXPECT_EQ(t.ops[3].proc, 1);
}

TEST(TraceText, RoundTripsEveryGenerator) {
  for (const std::string& kind : generator_names()) {
    GenSpec g;
    g.kind = kind;
    g.procs = 5;
    g.ops = 700;
    g.seed = 42;
    const Trace t = generate_trace(g);
    EXPECT_EQ(parse_trace_text(trace_to_text(t)), t) << kind;
  }
}

TEST(TraceBinary, RoundTripsEveryGenerator) {
  for (const std::string& kind : generator_names()) {
    GenSpec g;
    g.kind = kind;
    g.procs = 5;
    g.ops = 700;
    g.seed = 42;
    const Trace t = generate_trace(g);
    EXPECT_EQ(parse_trace_binary(trace_to_binary(t)), t) << kind;
  }
}

TEST(TraceFile, SniffsEncodingFromMagic) {
  const Trace t = small_trace();
  const std::string dir = ::testing::TempDir();
  save_trace_file(dir + "/t.trace", t, /*binary=*/false);
  save_trace_file(dir + "/t.bin", t, /*binary=*/true);
  EXPECT_EQ(load_trace_file(dir + "/t.trace"), t);
  EXPECT_EQ(load_trace_file(dir + "/t.bin"), t);
  EXPECT_TRUE(contains(error_of([&] { load_trace_file(dir + "/nope"); }),
                       "cannot read trace file"));
}

// ---- malformed text: each dies loudly with a line number ---------------

TEST(TraceTextMalformed, MissingHeader) {
  const std::string e = error_of([] { parse_trace_text("0 0 RD 1\n", "f"); });
  EXPECT_TRUE(contains(e, "f:1: ")) << e;
  EXPECT_TRUE(contains(e, "expected header")) << e;
}

TEST(TraceTextMalformed, WrongVersion) {
  const std::string e = error_of(
      [] { parse_trace_text("rmrsim-trace v9 procs=1 ops=0\n", "f"); });
  EXPECT_TRUE(contains(e, "unsupported trace version 'v9'")) << e;
}

TEST(TraceTextMalformed, OverflowSizedOpCount) {
  const std::string e = error_of([] {
    parse_trace_text("rmrsim-trace v1 procs=1 ops=1000000001\n", "f");
  });
  EXPECT_TRUE(contains(e, "f:1: ")) << e;
  EXPECT_TRUE(contains(e, "exceeds the maximum trace size")) << e;
}

TEST(TraceTextMalformed, ProcCountOutOfRange) {
  const std::string e = error_of(
      [] { parse_trace_text("rmrsim-trace v1 procs=0 ops=0\n", "f"); });
  EXPECT_TRUE(contains(e, "procs=0 out of range")) << e;
}

TEST(TraceTextMalformed, OpProcOutOfRange) {
  const std::string e = error_of([] {
    parse_trace_text("rmrsim-trace v1 procs=2 ops=1\n2 0 RD 1\n", "f");
  });
  EXPECT_TRUE(contains(e, "f:2: ")) << e;
  EXPECT_TRUE(contains(e, "proc 2 out of range [0, 2)")) << e;
}

TEST(TraceTextMalformed, NonMonotonicSequence) {
  const std::string e = error_of([] {
    parse_trace_text(
        "rmrsim-trace v1 procs=1 ops=2\n0 0 RD 1\n0 2 RD 1\n", "f");
  });
  EXPECT_TRUE(contains(e, "f:3: ")) << e;
  EXPECT_TRUE(contains(e, "non-monotonic sequence for proc 0: expected seq "
                          "1, got 2"))
      << e;
}

TEST(TraceTextMalformed, TruncatedBody) {
  const std::string e = error_of([] {
    parse_trace_text("rmrsim-trace v1 procs=1 ops=3\n0 0 RD 1\n", "f");
  });
  EXPECT_TRUE(contains(e, "truncated trace: header declares ops=3 but the "
                          "file ends after 1 op(s)"))
      << e;
}

TEST(TraceTextMalformed, HostileOpCountDoesNotPreallocate) {
  // ops= is below the hard cap but ~1e9 larger than the actual file. The
  // header-driven reserve() is bounded, so this must die at the truncated-
  // trace check — not in a ~30 GB up-front allocation that the two real
  // lines never justify.
  const std::string e = error_of([] {
    parse_trace_text("rmrsim-trace v1 procs=1 ops=999999999\n0 0 RD 1\n",
                     "f");
  });
  EXPECT_TRUE(contains(e, "truncated trace: header declares ops=999999999 "
                          "but the file ends after 1 op(s)"))
      << e;
}

TEST(TraceTextMalformed, MoreOpsThanDeclared) {
  const std::string e = error_of([] {
    parse_trace_text(
        "rmrsim-trace v1 procs=1 ops=1\n0 0 RD 1\n0 1 RD 1\n", "f");
  });
  EXPECT_TRUE(contains(e, "f:3: ")) << e;
  EXPECT_TRUE(contains(e, "more ops than the header's ops=1")) << e;
}

TEST(TraceTextMalformed, UnknownMnemonic) {
  const std::string e = error_of([] {
    parse_trace_text("rmrsim-trace v1 procs=1 ops=1\n0 0 XCHG 1\n", "f");
  });
  EXPECT_TRUE(contains(e, "unknown op mnemonic 'XCHG'")) << e;
}

TEST(TraceTextMalformed, WrongArity) {
  const std::string e = error_of([] {
    parse_trace_text("rmrsim-trace v1 procs=1 ops=1\n0 0 CAS 1 2\n", "f");
  });
  EXPECT_TRUE(contains(e, "CAS expects 3 operand(s), got 2")) << e;
}

TEST(TraceTextMalformed, NegativeNumberRejected) {
  const std::string e = error_of([] {
    parse_trace_text("rmrsim-trace v1 procs=1 ops=1\n0 0 WR 4 -1\n", "f");
  });
  EXPECT_TRUE(contains(e, "expects an unsigned integer, got '-1'")) << e;
}

// ---- malformed binary --------------------------------------------------

TEST(TraceBinaryMalformed, BadMagic) {
  const std::string e =
      error_of([] { parse_trace_binary("NOTATRACE", "f"); });
  EXPECT_TRUE(contains(e, "byte offset 0")) << e;
  EXPECT_TRUE(contains(e, "bad magic")) << e;
}

TEST(TraceBinaryMalformed, TruncatedBody) {
  std::string bytes = trace_to_binary(small_trace());
  bytes.resize(bytes.size() - 10);
  const std::string e = error_of([&] { parse_trace_binary(bytes, "f"); });
  EXPECT_TRUE(contains(e, "truncated")) << e;
}

TEST(TraceBinaryMalformed, TrailingBytes) {
  std::string bytes = trace_to_binary(small_trace());
  bytes += "x";
  const std::string e = error_of([&] { parse_trace_binary(bytes, "f"); });
  EXPECT_TRUE(contains(e, "trailing bytes after the checksum")) << e;
}

TEST(TraceBinaryMalformed, CrcMismatchOnBitFlip) {
  std::string bytes = trace_to_binary(small_trace());
  bytes[bytes.size() - 6] ^= 0x10;  // flip a bit inside the last record
  const std::string e = error_of([&] { parse_trace_binary(bytes, "f"); });
  EXPECT_TRUE(contains(e, "CRC mismatch")) << e;
}

// ---- generators --------------------------------------------------------

TEST(Generators, DeterministicPerSeedAndDistinctAcrossSeeds) {
  for (const std::string& kind : generator_names()) {
    GenSpec g;
    g.kind = kind;
    g.procs = 7;
    g.ops = 900;
    g.seed = 3;
    const Trace a = generate_trace(g);
    const Trace b = generate_trace(g);
    EXPECT_EQ(a, b) << kind;
    g.seed = 4;
    EXPECT_NE(generate_trace(g), a) << kind;
  }
}

TEST(Generators, UnknownKindRejected) {
  GenSpec g;
  g.kind = "bogus";
  EXPECT_TRUE(contains(error_of([&] { generate_trace(g); }), "bogus"));
}

TEST(Generators, EveryOpInRange) {
  for (const std::string& kind : generator_names()) {
    GenSpec g;
    g.kind = kind;
    g.procs = 3;
    g.ops = 500;
    const Trace t = generate_trace(g);
    EXPECT_EQ(t.nprocs, 3);
    EXPECT_EQ(t.ops.size(), 500u);
    for (const TraceOp& op : t.ops) {
      EXPECT_GE(op.proc, 0);
      EXPECT_LT(op.proc, 3);
    }
  }
}

// ---- replay ------------------------------------------------------------

TEST(Replay, ByteIdenticalAcrossRuns) {
  GenSpec g;
  g.kind = "zipf";
  g.procs = 8;
  g.ops = 4000;
  const Trace t = generate_trace(g);
  ReplayOptions opts;
  opts.protocols = protocol_names();
  opts.write_buffer = 4;
  auto mem1 = make_cc(t.nprocs);
  auto mem2 = make_cc(t.nprocs);
  EXPECT_EQ(replay_trace(t, *mem1, opts).to_json(),
            replay_trace(t, *mem2, opts).to_json());
}

TEST(Replay, PrivateTraceIsHomeLocalUnderDsm) {
  GenSpec g;
  g.kind = "private";
  g.procs = 6;
  g.ops = 3000;
  const Trace t = generate_trace(g);
  auto mem = make_dsm(t.nprocs);
  const MetricsRegistry reg = replay_trace_core(t, *mem);
  EXPECT_EQ(reg.value("ledger.total_ops"), 3000.0);
  EXPECT_EQ(reg.value("ledger.total_rmrs"), 0.0);
}

TEST(Replay, HotsetUnderDsmCostsRmrsProportionalToOps) {
  auto total_rmrs = [](int procs) {
    GenSpec g;
    g.kind = "hotset";
    g.procs = procs;
    g.ops = static_cast<std::uint64_t>(procs) * 256;
    const Trace t = generate_trace(g);
    auto mem = make_dsm(t.nprocs);
    return replay_trace_core(t, *mem).value("ledger.total_rmrs");
  };
  const double r8 = total_rmrs(8);
  const double r32 = total_rmrs(32);
  // Total work quadruples; the DSM remote-reference bill must track it.
  EXPECT_GT(r8, 8 * 256 / 2.0);
  EXPECT_GT(r32, 3.0 * r8);
}

TEST(Replay, AddrMapPolicies) {
  GenSpec g;
  g.kind = "private";
  g.procs = 4;
  g.ops = 1000;
  const Trace t = generate_trace(g);
  // global: every variable is remote to everyone — each op is one RMR.
  {
    auto mem = make_dsm(t.nprocs);
    const MetricsRegistry reg =
        replay_trace_core(t, *mem, parse_addr_map("global"));
    EXPECT_EQ(reg.value("ledger.total_rmrs"), 1000.0);
  }
  // first-touch: private streams are touched first by their owner — local.
  {
    auto mem = make_dsm(t.nprocs);
    const MetricsRegistry reg =
        replay_trace_core(t, *mem, parse_addr_map("first-touch"));
    EXPECT_EQ(reg.value("ledger.total_rmrs"), 0.0);
  }
}

TEST(Replay, MismatchedProcCountRejected) {
  const Trace t = small_trace();
  auto mem = make_dsm(t.nprocs + 1);
  EXPECT_TRUE(contains(error_of([&] { replay_trace_core(t, *mem); }),
                       "different processor count"));
}

TEST(Replay, UnknownProtocolRejected) {
  const Trace t = small_trace();
  auto mem = make_cc(t.nprocs);
  ReplayOptions opts;
  opts.protocols = {"mesi", "bogus"};
  EXPECT_TRUE(contains(error_of([&] { replay_trace(t, *mem, opts); }),
                       "unknown protocol 'bogus'"));
}

// ---- cycle-cost override ----------------------------------------------

TEST(CycleCosts, ParseDefaultsAndOverrides) {
  const CycleCosts def = parse_cycle_costs("");
  EXPECT_EQ(def.memory_fetch, CycleCosts{}.memory_fetch);
  const CycleCosts c = parse_cycle_costs(
      "fetch=7,transfer=3,signal=1,update=2,writeback=50");
  EXPECT_EQ(c.memory_fetch, 7u);
  EXPECT_EQ(c.cache_transfer, 3u);
  EXPECT_EQ(c.bus_signal, 1u);
  EXPECT_EQ(c.bus_update, 2u);
  EXPECT_EQ(c.write_back, 50u);
  const CycleCosts partial = parse_cycle_costs("fetch=9");
  EXPECT_EQ(partial.memory_fetch, 9u);
  EXPECT_EQ(partial.cache_transfer, CycleCosts{}.cache_transfer);
}

TEST(CycleCosts, ParseRejectsMalformedSpecs) {
  EXPECT_TRUE(contains(error_of([] { parse_cycle_costs("bogus=1"); }),
                       "unknown key 'bogus'"));
  EXPECT_TRUE(contains(error_of([] { parse_cycle_costs("fetch=1,fetch=2"); }),
                       "duplicate"));
  EXPECT_TRUE(
      contains(error_of([] { parse_cycle_costs("fetch=banana"); }), "fetch"));
}

TEST(CycleCosts, OverrideReprices) {
  GenSpec g;
  g.kind = "hotset";
  g.procs = 4;
  g.ops = 2000;
  const Trace t = generate_trace(g);
  auto cycles_with = [&](const std::string& spec) {
    ReplayOptions opts;
    opts.protocols = {"mesi"};
    opts.costs = parse_cycle_costs(spec);
    auto mem = make_cc(t.nprocs);
    return replay_trace(t, *mem, opts).value("cycles.mesi.total");
  };
  EXPECT_GT(cycles_with("fetch=1000"), cycles_with("fetch=1"));
}

// ---- fleet + write-buffer reset parity (the replayability guarantee) ---

TEST(FleetReset, ReplayAfterResetIsByteIdentical) {
  GenSpec g;
  g.kind = "zipf";
  g.procs = 8;
  g.ops = 5000;
  const Trace t = generate_trace(g);

  ProtocolFleet fleet(t.nprocs);
  WriteBuffer wb(fleet.listener(), t.nprocs, 4);

  auto run_once = [&] {
    auto mem = make_cc(t.nprocs);
    mem->set_listener(&wb);
    MetricsRegistry reg = replay_trace_core(t, *mem);
    mem->listener()->flush();
    mem->set_listener(nullptr);
    for (const auto& cache : fleet.caches()) publish_protocol(reg, *cache);
    for (const MessageCounter* c :
         {static_cast<const MessageCounter*>(&fleet.bus()),
          static_cast<const MessageCounter*>(&fleet.ideal()),
          static_cast<const MessageCounter*>(&fleet.coarse())}) {
      publish_messages(reg, *c);
    }
    publish_write_buffer(reg, wb);
    EXPECT_FALSE(fleet.check_invariants().has_value());
    return reg.to_json();
  };

  const std::string first = run_once();
  // Without a reset the second pass accumulates on top of the first.
  const std::string dirty = run_once();
  EXPECT_NE(first, dirty);
  // reset() must scrub BOTH the fleet and the write buffer in front of it;
  // after that, the same seeded trace produces the same bytes.
  fleet.reset();
  wb.reset();
  EXPECT_EQ(run_once(), first);
}

}  // namespace
}  // namespace rmrsim
