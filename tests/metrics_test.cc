// Tests for the metrics registry (counters, gauges, summaries, histograms,
// series, merge, JSON shape) and the simulation publishers.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "memory/shared_memory.h"
#include "metrics/publish.h"
#include "metrics/registry.h"
#include "signaling/dsm_registration.h"
#include "signaling/workload.h"
#include "trace/call_stats.h"

namespace rmrsim {
namespace {

TEST(Registry, CountersAccumulateAndGaugesOverwrite) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.add("a.count");
  reg.add("a.count", 4);
  EXPECT_EQ(reg.counter("a.count"), 5u);
  EXPECT_EQ(reg.counter("missing"), 0u);
  reg.set("a.gauge", 1.5);
  reg.set("a.gauge", 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("a.gauge"), 2.5);
  EXPECT_FALSE(reg.empty());
}

TEST(Registry, ValueViewMergesCountersAndGauges) {
  MetricsRegistry reg;
  reg.add("n", 7);
  reg.set("g", 0.25);
  EXPECT_TRUE(reg.has_value("n"));
  EXPECT_TRUE(reg.has_value("g"));
  EXPECT_FALSE(reg.has_value("absent"));
  EXPECT_DOUBLE_EQ(reg.value("n"), 7.0);
  EXPECT_DOUBLE_EQ(reg.value("g"), 0.25);
  EXPECT_DOUBLE_EQ(reg.value("absent"), 0.0);
  // Counters win a name clash.
  reg.set("n", 99.0);
  EXPECT_DOUBLE_EQ(reg.value("n"), 7.0);
  const auto names = reg.value_names();
  ASSERT_EQ(names.size(), 2u);  // clash reported once
  EXPECT_EQ(names[0], "g");
  EXPECT_EQ(names[1], "n");
}

TEST(Registry, SummariesTrackCountSumMinMax) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.summary("s"), nullptr);
  reg.observe("s", 3.0);
  reg.observe("s", -1.0);
  reg.observe("s", 10.0);
  const auto* s = reg.summary("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 3u);
  EXPECT_DOUBLE_EQ(s->sum, 12.0);
  EXPECT_DOUBLE_EQ(s->min, -1.0);
  EXPECT_DOUBLE_EQ(s->max, 10.0);
  EXPECT_DOUBLE_EQ(s->mean(), 4.0);
}

TEST(Registry, HistogramBucketsAreUpperBoundsPlusOverflow) {
  MetricsRegistry reg;
  const std::array<double, 3> bounds{1, 4, 16};
  for (const double v : {0.0, 1.0, 2.0, 4.0, 5.0, 100.0}) {
    reg.histogram_observe("h", bounds, v);
  }
  const auto* h = reg.histogram("h");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->counts.size(), 4u);
  EXPECT_EQ(h->counts[0], 2u);  // <= 1: {0, 1}
  EXPECT_EQ(h->counts[1], 2u);  // <= 4: {2, 4}
  EXPECT_EQ(h->counts[2], 1u);  // <= 16: {5}
  EXPECT_EQ(h->counts[3], 1u);  // +inf: {100}
  EXPECT_EQ(h->total, 6u);
}

TEST(Registry, SeriesKeepAppendOrderAndLabels) {
  MetricsRegistry reg;
  reg.series_append("xy", 1, 10, "first");
  reg.series_append("xy", 2, 20);
  const auto* s = reg.series("xy");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->points.size(), 2u);
  EXPECT_DOUBLE_EQ(s->points[0].x, 1);
  EXPECT_DOUBLE_EQ(s->points[0].y, 10);
  EXPECT_EQ(s->points[0].label, "first");
  EXPECT_EQ(s->points[1].label, "");
}

TEST(Registry, MergeFromCombinesEverySection) {
  MetricsRegistry a;
  a.add("c", 1);
  a.set("g", 1.0);
  a.observe("s", 1.0);
  a.series_append("xy", 1, 1);
  MetricsRegistry b;
  b.add("c", 2);
  b.set("g", 2.0);
  b.observe("s", 3.0);
  b.series_append("xy", 2, 2);
  a.merge_from(b);
  EXPECT_EQ(a.counter("c"), 3u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 2.0);  // gauges: other wins
  EXPECT_EQ(a.summary("s")->count, 2u);
  EXPECT_EQ(a.series("xy")->points.size(), 2u);
}

TEST(Registry, ToJsonIsSortedAndOmitsEmptySections) {
  MetricsRegistry reg;
  reg.add("b", 2);
  reg.add("a", 1);
  reg.set("z", 0.5);
  const std::string json = reg.to_json();
  EXPECT_EQ(json,
            "{\"metrics\":{\"a\":1,\"b\":2,\"z\":0.5}}");
  reg.series_append("s", 1, 2, "L");
  const std::string with_series = reg.to_json();
  EXPECT_NE(with_series.find("\"series\":{\"s\":"), std::string::npos);
  EXPECT_EQ(with_series.find("histograms"), std::string::npos);
}

TEST(Registry, FormatMetricNumberIsIntegerExactAndDeterministic) {
  EXPECT_EQ(format_metric_number(0), "0");
  EXPECT_EQ(format_metric_number(42), "42");
  EXPECT_EQ(format_metric_number(-7), "-7");
  EXPECT_EQ(format_metric_number(1e15), "1000000000000000");
  EXPECT_EQ(format_metric_number(2.5), "2.5");
  EXPECT_EQ(format_metric_number(1.0 / 3.0), format_metric_number(1.0 / 3.0));
}

TEST(Publish, SimulationPublishesLedgerAndHistory) {
  SignalingWorkloadOptions opt;
  opt.n_waiters = 4;
  opt.signaler_idle_polls = 16;
  auto run = run_signaling_workload(
      make_dsm(5),
      [](SharedMemory& m) {
        return std::make_unique<DsmRegistrationSignal>(m, 4);
      },
      opt);
  MetricsRegistry reg;
  publish_simulation(reg, *run.sim);
  EXPECT_EQ(reg.counter("ledger.total_rmrs"),
            run.sim->memory().ledger().total_rmrs());
  EXPECT_EQ(reg.counter("history.steps"), run.sim->history().size());
  EXPECT_EQ(reg.counter("history.participants"), 5u);
  EXPECT_EQ(reg.counter("history.crashes"), 0u);
  EXPECT_GT(reg.counter("sim.clock"), 0u);
  // ledger.local_ops + ledger.total_rmrs == ledger.total_ops.
  EXPECT_EQ(reg.counter("ledger.local_ops") + reg.counter("ledger.total_rmrs"),
            reg.counter("ledger.total_ops"));
}

TEST(Publish, CallCostsAggregatePerCode) {
  SignalingWorkloadOptions opt;
  opt.n_waiters = 3;
  opt.signaler_idle_polls = 8;
  auto run = run_signaling_workload(
      make_dsm(4),
      [](SharedMemory& m) {
        return std::make_unique<DsmRegistrationSignal>(m, 3);
      },
      opt);
  const auto costs = per_call_costs(run.sim->history());
  MetricsRegistry reg;
  publish_call_costs(reg, costs);
  EXPECT_GT(reg.counter("calls.poll.count"), 0u);
  EXPECT_EQ(reg.counter("calls.signal.count"), 1u);
  EXPECT_EQ(reg.counter("calls.poll.count"),
            reg.counter("calls.poll.completed"));
  const auto* h = reg.histogram("calls.poll.rmrs_per_call");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total, reg.counter("calls.poll.count"));
}

}  // namespace
}  // namespace rmrsim
