// Shape tests: the paper's asymptotic claims asserted as measured growth
// rates (log-log slopes over N sweeps) rather than absolute numbers —
// DESIGN.md substitution 6. These are the EXPERIMENTS.md numbers, enforced
// in CI.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/stats.h"
#include "lowerbound/adversary.h"
#include "memory/cc_model.h"
#include "mutex/simple_locks.h"
#include "mutex/ya_lock.h"
#include "sched/schedulers.h"
#include "signaling/cc_flag.h"
#include "signaling/dsm_registration.h"
#include "signaling/workload.h"

namespace rmrsim {
namespace {

const std::vector<double> kNs = {16, 32, 64, 128, 256};

TEST(Stats, SlopeFitsKnownCurves) {
  const std::vector<double> xs = {2, 4, 8, 16, 32};
  std::vector<double> linear;
  std::vector<double> constant;
  for (const double x : xs) {
    linear.push_back(3 * x);
    constant.push_back(7);
  }
  EXPECT_NEAR(loglog_slope(xs, linear), 1.0, 1e-9);
  EXPECT_NEAR(loglog_slope(xs, constant), 0.0, 1e-9);
}

TEST(Shapes, TheoremSeparationSlopes) {
  // Headline: forced amortized RMRs under the strict DSM adversary grow
  // ~N^1; the CC control stays ~N^0.
  std::vector<double> dsm_amortized;
  std::vector<double> cc_signaler;
  for (const double nd : kNs) {
    const int n = static_cast<int>(nd);
    {
      AdversaryConfig c;
      c.nprocs = n;
      c.construction = Construction::kStrict;
      SignalingAdversary adv(
          [n](SharedMemory& m) {
            return std::make_unique<DsmRegistrationSignal>(
                m, static_cast<ProcId>(n - 2));
          },
          c);
      const auto r = adv.run();
      ASSERT_TRUE(r.stabilized);
      dsm_amortized.push_back(r.amortized_final);
    }
    {
      AdversaryConfig c;
      c.nprocs = n;
      c.construction = Construction::kLenient;
      c.erase_during_chase = false;
      c.make_memory = [](int k) { return make_cc(k); };
      SignalingAdversary adv(
          [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
          c);
      const auto r = adv.run();
      ASSERT_TRUE(r.stabilized);
      cc_signaler.push_back(
          static_cast<double>(r.signaler_rmrs) + 1.0);  // keep logs positive
    }
  }
  EXPECT_GT(loglog_slope(kNs, dsm_amortized), 0.85);
  EXPECT_LT(loglog_slope(kNs, cc_signaler), 0.05);
}

TEST(Shapes, CcFlagPerProcessCostIsFlat) {
  std::vector<double> max_waiter;
  for (const double nd : kNs) {
    SignalingWorkloadOptions opt;
    opt.n_waiters = static_cast<int>(nd);
    opt.signaler_idle_polls = 64;
    auto run = run_signaling_workload(
        make_cc(static_cast<int>(nd) + 1),
        [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
        opt);
    max_waiter.push_back(static_cast<double>(run.max_waiter_rmrs()));
  }
  EXPECT_LT(loglog_slope(kNs, max_waiter), 0.05);
}

TEST(Shapes, YangAndersonGrowsLogarithmically) {
  // Theta(log N): much slower than any power. On a log-log plot the local
  // slope decays; across our sweep it must sit well below sqrt growth and
  // the absolute ratio across a 16x range of N must stay near
  // log(256)/log(16) = 2.
  auto per_passage = [](int n) {
    auto mem = make_dsm(n);
    YangAndersonLock lock(*mem);
    std::vector<Program> programs;
    for (int i = 0; i < n; ++i) {
      programs.emplace_back(
          [&lock](ProcCtx& ctx) { return mutex_worker(ctx, &lock, 2); });
    }
    Simulation sim(*mem, std::move(programs));
    RoundRobinScheduler rr;
    EXPECT_TRUE(sim.run(rr, 200'000'000).all_terminated);
    return static_cast<double>(mem->ledger().total_rmrs()) /
           static_cast<double>(2 * n);
  };
  std::vector<double> costs;
  for (const double nd : kNs) costs.push_back(per_passage(static_cast<int>(nd)));
  EXPECT_LT(loglog_slope(kNs, costs), 0.5);       // far below linear
  EXPECT_GT(costs.back() / costs.front(), 1.5);   // but genuinely growing
  EXPECT_LT(costs.back() / costs.front(), 3.0);   // ~log(256)/log(16) = 2
}

TEST(Shapes, AndersonArrayLinearInDsmFlatInCc) {
  auto per_passage = [](int n, bool cc) {
    auto mem = cc ? make_cc(n) : make_dsm(n);
    AndersonArrayLock lock(*mem);
    std::vector<Program> programs;
    for (int i = 0; i < n; ++i) {
      programs.emplace_back(
          [&lock](ProcCtx& ctx) { return mutex_worker(ctx, &lock, 2); });
    }
    Simulation sim(*mem, std::move(programs));
    RoundRobinScheduler rr;
    EXPECT_TRUE(sim.run(rr, 200'000'000).all_terminated);
    return static_cast<double>(mem->ledger().total_rmrs()) /
           static_cast<double>(2 * n);
  };
  std::vector<double> dsm;
  std::vector<double> cc;
  for (const double nd : kNs) {
    dsm.push_back(per_passage(static_cast<int>(nd), false));
    cc.push_back(per_passage(static_cast<int>(nd), true));
  }
  EXPECT_GT(loglog_slope(kNs, dsm), 0.8);
  EXPECT_LT(loglog_slope(kNs, cc), 0.1);
}

TEST(Shapes, RegistrationAmortizedFlatInHonestRuns) {
  // The same algorithm the adversary destroys is O(1) amortized in honest
  // (fair, everyone-participates) executions — the contrast that makes
  // Theorem 6.2 an *adversarial* result.
  std::vector<double> amortized;
  for (const double nd : kNs) {
    const int n = static_cast<int>(nd);
    SignalingWorkloadOptions opt;
    opt.n_waiters = n;
    opt.signaler_idle_polls = 16;
    auto run = run_signaling_workload(
        make_dsm(n + 1),
        [n](SharedMemory& m) {
          return std::make_unique<DsmRegistrationSignal>(
              m, static_cast<ProcId>(n));
        },
        opt);
    amortized.push_back(run.amortized_rmrs());
  }
  EXPECT_LT(loglog_slope(kNs, amortized), 0.1);
}

}  // namespace
}  // namespace rmrsim
