// Mutual exclusion substrate tests: safety under many interleavings for
// every lock, liveness under fair schedules, and the RMR shapes that anchor
// the simulator against the known Section 3 bounds (experiment E5 in
// miniature).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "mutex/bakery_lock.h"
#include "mutex/clh_lock.h"
#include "mutex/mcs_lock.h"
#include "mutex/peterson_lock.h"
#include "mutex/simple_locks.h"
#include "mutex/ya_lock.h"
#include "sched/schedulers.h"

namespace rmrsim {
namespace {

using LockFactory =
    std::function<std::unique_ptr<MutexAlgorithm>(SharedMemory&)>;

struct LockCase {
  const char* label;
  LockFactory factory;
};

std::vector<LockCase> all_locks() {
  return {
      {"yang-anderson",
       [](SharedMemory& m) { return std::make_unique<YangAndersonLock>(m); }},
      {"mcs", [](SharedMemory& m) { return std::make_unique<McsLock>(m); }},
      {"anderson-array",
       [](SharedMemory& m) { return std::make_unique<AndersonArrayLock>(m); }},
      {"ticket", [](SharedMemory& m) { return std::make_unique<TicketLock>(m); }},
      {"tas-spin", [](SharedMemory& m) { return std::make_unique<TasLock>(m); }},
      {"bakery",
       [](SharedMemory& m) { return std::make_unique<BakeryLock>(m); }},
      {"clh", [](SharedMemory& m) { return std::make_unique<ClhLock>(m); }},
      {"peterson-tournament",
       [](SharedMemory& m) {
         return std::make_unique<PetersonTournamentLock>(m);
       }},
  };
}

struct MutexRun {
  std::unique_ptr<SharedMemory> mem;
  std::unique_ptr<MutexAlgorithm> lock;
  std::unique_ptr<Simulation> sim;
};

MutexRun run_mutex(std::unique_ptr<SharedMemory> mem, const LockFactory& make,
                   int nprocs, int passages, Scheduler& sched,
                   std::uint64_t budget = 30'000'000) {
  MutexRun r;
  r.mem = std::move(mem);
  r.lock = make(*r.mem);
  std::vector<Program> programs;
  MutexAlgorithm* lock = r.lock.get();
  for (int i = 0; i < nprocs; ++i) {
    programs.emplace_back([lock, passages](ProcCtx& ctx) {
      return mutex_worker(ctx, lock, passages);
    });
  }
  r.sim = std::make_unique<Simulation>(*r.mem, std::move(programs));
  const auto result = r.sim->run(sched, budget);
  EXPECT_TRUE(result.all_terminated) << "lock run did not complete";
  return r;
}

// ---------------------------------------------------------------------------
// Safety sweep: every lock x both models x many seeds.
// ---------------------------------------------------------------------------

class MutexSafetySweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, bool>> {};

TEST_P(MutexSafetySweep, NoOverlappingCriticalSections) {
  const int nprocs = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  const bool use_cc = std::get<2>(GetParam());
  for (const LockCase& c : all_locks()) {
    SCOPED_TRACE(c.label);
    RandomScheduler sched(seed);
    auto mem = use_cc ? make_cc(nprocs) : make_dsm(nprocs);
    auto r = run_mutex(std::move(mem), c.factory, nprocs, 4, sched);
    const auto v = check_mutual_exclusion(r.sim->history());
    EXPECT_FALSE(v.has_value())
        << v->what << " at step " << v->step_index << " (p" << v->first
        << " vs p" << v->second << ")";
    for (ProcId p = 0; p < nprocs; ++p) {
      EXPECT_EQ(passages_completed(r.sim->history(), p), 4) << "p" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MutexSafetySweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(11u, 222u, 3333u, 44444u, 555555u),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Checker sharpness: a "lock" that never locks must be convicted.
// ---------------------------------------------------------------------------

class NoLock final : public MutexAlgorithm {
 public:
  SubTask<void> acquire(ProcCtx& ctx) override { co_await ctx.mark(0); }
  SubTask<void> release(ProcCtx& ctx) override { co_await ctx.mark(1); }
  std::string_view name() const override { return "no-lock"; }
};

TEST(MutexChecker, ConvictsTheNoLock) {
  auto mem = make_dsm(2);
  auto lock = std::make_unique<NoLock>();
  std::vector<Program> programs;
  MutexAlgorithm* l = lock.get();
  for (int i = 0; i < 2; ++i) {
    programs.emplace_back(
        [l](ProcCtx& ctx) { return mutex_worker(ctx, l, 2); });
  }
  Simulation sim(*mem, std::move(programs));
  // Interleave begin/begin: step p0 to its CS begin, then run p1 fully.
  RoundRobinScheduler rr;
  sim.run(rr, 100000);
  EXPECT_TRUE(check_mutual_exclusion(sim.history()).has_value());
}

// ---------------------------------------------------------------------------
// RMR shapes (Section 3 anchors).
// ---------------------------------------------------------------------------

double rmrs_per_passage(const MutexRun& r, int nprocs, int passages) {
  return static_cast<double>(r.mem->ledger().total_rmrs()) /
         static_cast<double>(nprocs * passages);
}

TEST(MutexRmrShape, YangAndersonIsLogNInBothModels) {
  // Solo (uncontended) passages: exactly the tree-path cost. Contended runs
  // stay O(log N) too; the bench sweeps those.
  for (const bool cc : {false, true}) {
    for (const int n : {4, 16, 64}) {
      auto mem = cc ? make_cc(n) : make_dsm(n);
      RoundRobinScheduler rr;
      auto r = run_mutex(std::move(mem),
                         [](SharedMemory& m) {
                           return std::make_unique<YangAndersonLock>(m);
                         },
                         n, 3, rr);
      const double per = rmrs_per_passage(r, n, 3);
      const double levels = std::log2(n);
      EXPECT_GE(per, levels) << "n=" << n << " cc=" << cc;
      EXPECT_LE(per, 14 * levels) << "n=" << n << " cc=" << cc;
    }
  }
}

TEST(MutexRmrShape, McsIsConstantInBothModels) {
  for (const bool cc : {false, true}) {
    for (const int n : {4, 16, 64}) {
      auto mem = cc ? make_cc(n) : make_dsm(n);
      RoundRobinScheduler rr;
      auto r = run_mutex(std::move(mem),
                         [](SharedMemory& m) {
                           return std::make_unique<McsLock>(m);
                         },
                         n, 3, rr);
      EXPECT_LE(rmrs_per_passage(r, n, 3), 8.0) << "n=" << n << " cc=" << cc;
    }
  }
}

TEST(MutexRmrShape, AndersonArrayConstantInCcNotLocalSpinInDsm) {
  const int n = 8;
  const int passages = 3;
  RoundRobinScheduler rr_cc;
  auto cc = run_mutex(make_cc(n),
                      [](SharedMemory& m) {
                        return std::make_unique<AndersonArrayLock>(m);
                      },
                      n, passages, rr_cc);
  EXPECT_LE(rmrs_per_passage(cc, n, passages), 8.0);

  RoundRobinScheduler rr_dsm;
  auto dsm = run_mutex(make_dsm(n),
                       [](SharedMemory& m) {
                         return std::make_unique<AndersonArrayLock>(m);
                       },
                       n, passages, rr_dsm);
  // Spinning on rotating remote slots: far above O(1) under contention.
  EXPECT_GE(rmrs_per_passage(dsm, n, passages),
            3 * rmrs_per_passage(cc, n, passages));
}

TEST(MutexRmrShape, TasLockLfcuVsWriteThrough) {
  // Section 3's LFCU aside: TAS mutual exclusion is O(1) RMRs per passage on
  // an LFCU machine, while standard invalidation-based CC pays per retry.
  const int n = 8;
  const int passages = 3;
  RoundRobinScheduler rr1;
  auto lfcu = run_mutex(make_cc(n, CcPolicy::kLfcu),
                        [](SharedMemory& m) {
                          return std::make_unique<TasLock>(m);
                        },
                        n, passages, rr1);
  RoundRobinScheduler rr2;
  auto wt = run_mutex(make_cc(n, CcPolicy::kWriteThrough),
                      [](SharedMemory& m) {
                        return std::make_unique<TasLock>(m);
                      },
                      n, passages, rr2);
  EXPECT_LE(rmrs_per_passage(lfcu, n, passages), 6.0);
  EXPECT_GE(rmrs_per_passage(wt, n, passages),
            2 * rmrs_per_passage(lfcu, n, passages));
}

TEST(MutexRmrShape, NoCcDsmSeparationForMutex) {
  // The contrast that makes the signaling result interesting: for ME the
  // read/write cost is the same order in CC and DSM (Section 3 — "the tight
  // bound is the same for the CC model as for the DSM model").
  const int n = 16;
  const int passages = 3;
  RoundRobinScheduler rr1;
  auto dsm = run_mutex(make_dsm(n),
                       [](SharedMemory& m) {
                         return std::make_unique<YangAndersonLock>(m);
                       },
                       n, passages, rr1);
  RoundRobinScheduler rr2;
  auto cc = run_mutex(make_cc(n),
                      [](SharedMemory& m) {
                        return std::make_unique<YangAndersonLock>(m);
                      },
                      n, passages, rr2);
  const double a = rmrs_per_passage(dsm, n, passages);
  const double b = rmrs_per_passage(cc, n, passages);
  EXPECT_LE(a / b, 3.0);
  EXPECT_LE(b / a, 3.0);
}

}  // namespace
}  // namespace rmrsim
