// Unit tests for the common substrate: deterministic RNG, invariant
// checking, table rendering, and the slope fitters' edge cases.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace rmrsim {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  SplitMix64 rng(99);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(1, 4)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Check, EnsureThrowsWithLocation) {
  try {
    ensure(false, "deliberate failure");
    FAIL() << "ensure did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("deliberate failure"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test"), std::string::npos);
  }
  EXPECT_NO_THROW(ensure(true, "fine"));
}

TEST(Check, FailAlwaysThrows) {
  EXPECT_THROW(fail("boom"), std::logic_error);
}

TEST(Table, AlignsColumnsAndRules) {
  TextTable t;
  t.set_header({"a", "long-header", "c"});
  t.add_row({"xxxxx", "1", "2"});
  t.add_row({"y", "22", "333"});
  const std::string out = t.render();
  // Header line, rule line, two rows.
  int lines = 0;
  for (const char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
  // Every row starts at column 0 and the rule is dashes.
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("long-header"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Fixed, FormatsDigits) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(fixed(-1.5, 1), "-1.5");
}

TEST(Stats, LinearSlope) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {10, 12, 14, 16};
  EXPECT_NEAR(linear_slope(xs, ys), 2.0, 1e-12);
}

TEST(Stats, LogLogRejectsNonPositive) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {0, 1};
  EXPECT_THROW(loglog_slope(xs, ys), std::logic_error);
}

TEST(Stats, SlopeNeedsTwoPoints) {
  const std::vector<double> one = {1};
  EXPECT_THROW(linear_slope(one, one), std::logic_error);
}

TEST(Stats, QuadraticHasSlopeTwoOnLogLog) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 2; x <= 64; x *= 2) {
    xs.push_back(x);
    ys.push_back(x * x);
  }
  EXPECT_NEAR(loglog_slope(xs, ys), 2.0, 1e-9);
}

}  // namespace
}  // namespace rmrsim
