// Failure injection: crashes (Section 2 — a process that terminates while
// performing a call) modeled as a process that is never scheduled again.
// These tests pin down which guarantees survive a crash and which are
// conditional on crash-freedom, exactly as the paper's progress definitions
// state ("for any fair history ... where no process crashes").
#include <gtest/gtest.h>

#include <memory>

#include "memory/shared_memory.h"
#include "primitives/multi_signaler.h"
#include "sched/schedulers.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/workload.h"

namespace rmrsim {
namespace {

/// Steps `p` until its history contains a record matching `pred`, then
/// abandons it (crash = parked forever).
template <typename Pred>
void run_until_record(Simulation& sim, ProcId p, Pred pred) {
  for (int i = 0; i < 100'000; ++i) {
    const StepRecord& r = sim.step(p);
    if (pred(r)) return;
  }
  FAIL() << "target record never appeared";
}

/// Schedules every process except `crashed`.
class AllBut final : public Scheduler {
 public:
  explicit AllBut(ProcId crashed) : crashed_(crashed) {}
  ProcId next(const Simulation& sim) override {
    const int n = sim.nprocs();
    for (int i = 1; i <= n; ++i) {
      const ProcId c = static_cast<ProcId>((last_ + i) % n);
      if (c != crashed_ && sim.runnable(c)) {
        last_ = c;
        return c;
      }
    }
    return kNoProc;
  }

 private:
  ProcId crashed_;
  ProcId last_ = -1;
};

TEST(FailureInjection, WaitFreeAlgorithmsSurviveWaiterCrash) {
  // cc-flag and dsm-registration Poll()/Signal() are wait-free: a crashed
  // waiter cannot block anyone else.
  for (const bool registration : {false, true}) {
    const int n_waiters = 5;
    const int nprocs = n_waiters + 1;
    auto mem = make_dsm(nprocs);
    std::unique_ptr<SignalingAlgorithm> alg;
    if (registration) {
      alg = std::make_unique<DsmRegistrationSignal>(
          *mem, static_cast<ProcId>(nprocs - 1));
    } else {
      alg = std::make_unique<CcFlagSignal>(*mem);
    }
    SignalingAlgorithm* a = alg.get();
    std::vector<Program> programs;
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a](ProcCtx& ctx) { return polling_waiter(ctx, a, 100'000); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    Simulation sim(*mem, std::move(programs));
    // Crash waiter 0 in the middle of its first Poll(): after its first
    // memory step inside the call.
    run_until_record(sim, 0, [](const StepRecord& r) {
      return r.kind == StepRecord::Kind::kMemOp;
    });
    AllBut sched(0);
    const auto result = sim.run(sched, 10'000'000);
    // Everyone except the crashed waiter finishes.
    for (ProcId p = 1; p < nprocs; ++p) {
      EXPECT_TRUE(sim.terminated(p)) << "p" << p << " blocked by the crash";
    }
    EXPECT_FALSE(result.all_terminated);  // p0 is parked, as expected
    const auto v = check_polling_spec(sim.history());
    EXPECT_FALSE(v.has_value()) << v->what;
  }
}

TEST(FailureInjection, QueueSignalerBlocksOnCrashBetweenClaimAndAnnounce) {
  // The F&I queue's only wait-point: a waiter that crashes after FAI(Tail)
  // but before announcing leaves a claimed-but-empty slot, and Signal()
  // (terminating, not wait-free) spins on it. The paper's terminating
  // property is explicitly conditional on crash-free histories — this test
  // demonstrates why the condition is necessary.
  const int n_waiters = 3;
  const int nprocs = n_waiters + 1;
  auto mem = make_dsm(nprocs);
  DsmQueueSignal alg(*mem);
  std::vector<Program> programs;
  for (int i = 0; i < n_waiters; ++i) {
    programs.emplace_back(
        [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 100'000); });
  }
  programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
  Simulation sim(*mem, std::move(programs));
  // Crash waiter 0 right after its FAI on Tail (slot claimed, no announce).
  run_until_record(sim, 0, [](const StepRecord& r) {
    return r.kind == StepRecord::Kind::kMemOp && r.op.type == OpType::kFaa;
  });
  AllBut sched(0);
  const auto result = sim.run(sched, 2'000'000);
  EXPECT_FALSE(result.all_terminated);
  EXPECT_FALSE(sim.terminated(nprocs - 1)) << "signaler should be spinning";
}

TEST(FailureInjection, RegistrationSignalerSurvivesAnyWaiterCrashPoint) {
  // dsm-registration has no claim/announce gap: crash a waiter at every
  // possible step of its first Poll() and the signaler still terminates.
  const int n_waiters = 3;
  const int nprocs = n_waiters + 1;
  for (int crash_step = 1; crash_step <= 5; ++crash_step) {
    auto mem = make_dsm(nprocs);
    DsmRegistrationSignal alg(*mem, static_cast<ProcId>(nprocs - 1));
    std::vector<Program> programs;
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 100'000); });
    }
    programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
    Simulation sim(*mem, std::move(programs));
    for (int s = 0; s < crash_step && !sim.terminated(0); ++s) sim.step(0);
    AllBut sched(0);
    sim.run(sched, 10'000'000);
    for (ProcId p = 1; p < nprocs; ++p) {
      EXPECT_TRUE(sim.terminated(p))
          << "p" << p << " blocked (crash_step=" << crash_step << ")";
    }
    const auto v = check_polling_spec(sim.history());
    EXPECT_FALSE(v.has_value()) << v->what;
  }
}

TEST(FailureInjection, MultiSignalerLosersWaitForTheWinner) {
  // Three signalers race; with the winner crashed mid-signal the losers
  // must NOT return (returning would complete a Signal() that is not yet
  // observable). With no crash, everyone finishes and the spec holds.
  const int n_waiters = 4;
  const int n_signalers = 3;
  const int nprocs = n_waiters + n_signalers;
  auto mem = make_dsm(nprocs);
  MultiSignalerSignal alg(*mem, std::make_unique<DsmQueueSignal>(*mem));
  std::vector<Program> programs;
  for (int i = 0; i < n_waiters; ++i) {
    programs.emplace_back(
        [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 100'000); });
  }
  for (int i = 0; i < n_signalers; ++i) {
    programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  const auto result = sim.run(rr, 10'000'000);
  EXPECT_TRUE(result.all_terminated);
  const auto v = check_polling_spec(sim.history());
  EXPECT_FALSE(v.has_value()) << v->what;
  // check_signal_once per process still holds (each signaler signaled once).
  EXPECT_FALSE(check_signal_once(sim.history()).has_value());
}

}  // namespace
}  // namespace rmrsim
