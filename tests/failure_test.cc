// Failure injection under the real crash model (Simulation::crash /
// recover): a crash destroys the victim's coroutine mid-call and releases
// nothing; a recovery re-runs its program against the preserved shared
// memory — the recoverable-mutual-exclusion failure model. These tests pin
// down which guarantees survive a crash and which are conditional on
// crash-freedom, exactly as the paper's progress definitions state ("for
// any fair history ... where no process crashes").
#include <gtest/gtest.h>

#include <memory>

#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "mutex/lock.h"
#include "mutex/mcs_lock.h"
#include "mutex/recoverable_lock.h"
#include "primitives/multi_signaler.h"
#include "sched/fault.h"
#include "sched/schedulers.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/workload.h"
#include "verify/explorer.h"

namespace rmrsim {
namespace {

bool is_memop(const StepRecord& r) {
  return r.kind == StepRecord::Kind::kMemOp;
}

TEST(FailureInjection, WaitFreeAlgorithmsSurviveWaiterCrash) {
  // cc-flag and dsm-registration Poll()/Signal() are wait-free: a crashed
  // waiter cannot block anyone else. The victim is genuinely crashed (frame
  // destroyed, call abandoned), not merely starved.
  for (const bool registration : {false, true}) {
    const int n_waiters = 5;
    const int nprocs = n_waiters + 1;
    auto mem = make_dsm(nprocs);
    std::unique_ptr<SignalingAlgorithm> alg;
    if (registration) {
      alg = std::make_unique<DsmRegistrationSignal>(
          *mem, static_cast<ProcId>(nprocs - 1));
    } else {
      alg = std::make_unique<CcFlagSignal>(*mem);
    }
    SignalingAlgorithm* a = alg.get();
    std::vector<Program> programs;
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a](ProcCtx& ctx) { return polling_waiter(ctx, a, 100'000); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    Simulation sim(*mem, std::move(programs));
    // Crash waiter 0 in the middle of its first Poll(): after its first
    // memory step inside the call.
    ASSERT_TRUE(sim.run_proc_until(0, is_memop));
    sim.crash(0);
    EXPECT_TRUE(sim.crashed(0));
    EXPECT_FALSE(sim.runnable(0));
    RoundRobinScheduler sched;  // skips the crashed victim on its own
    const auto result = sim.run(sched, 10'000'000);
    // Everyone except the crashed waiter finishes.
    for (ProcId p = 1; p < nprocs; ++p) {
      EXPECT_TRUE(sim.terminated(p)) << "p" << p << " blocked by the crash";
    }
    EXPECT_FALSE(result.all_terminated);  // p0 is down, as expected
    const auto v = check_polling_spec(sim.history());
    EXPECT_FALSE(v.has_value()) << v->what;
  }
}

TEST(FailureInjection, QueueSignalerBlocksOnCrashBetweenClaimAndAnnounce) {
  // The F&I queue's only wait-point: a waiter that crashes after FAI(Tail)
  // but before announcing leaves a claimed-but-empty slot, and Signal()
  // (terminating, not wait-free) spins on it. The paper's terminating
  // property is explicitly conditional on crash-free histories — this test
  // demonstrates why the condition is necessary.
  const int n_waiters = 3;
  const int nprocs = n_waiters + 1;
  auto mem = make_dsm(nprocs);
  DsmQueueSignal alg(*mem);
  std::vector<Program> programs;
  for (int i = 0; i < n_waiters; ++i) {
    programs.emplace_back(
        [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 100'000); });
  }
  programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
  Simulation sim(*mem, std::move(programs));
  // Crash waiter 0 right after its FAI on Tail (slot claimed, no announce).
  ASSERT_TRUE(sim.run_proc_until(0, [](const StepRecord& r) {
    return r.kind == StepRecord::Kind::kMemOp && r.op.type == OpType::kFaa;
  }));
  sim.crash(0);
  RoundRobinScheduler sched;
  const auto result = sim.run(sched, 2'000'000);
  EXPECT_FALSE(result.all_terminated);
  EXPECT_FALSE(sim.terminated(nprocs - 1)) << "signaler should be spinning";
  // Recovery does NOT unwedge it: the re-executed Poll() claims a *fresh*
  // slot with a new FAI, and the orphaned claim stays empty forever. An
  // algorithm without a recovery section is not recoverable — re-execution
  // alone cannot repair shared state (contrast RecoverableSpinLock, whose
  // recovery section releases its orphaned hold).
  sim.recover(0);
  const auto after = sim.run(sched, 2'000'000);
  EXPECT_FALSE(after.all_terminated)
      << "re-execution must not repair the orphaned slot claim";
  EXPECT_FALSE(sim.terminated(nprocs - 1)) << "signaler still spinning";
  EXPECT_TRUE(sim.terminated(0)) << "the recovered waiter itself finishes";
  EXPECT_EQ(sim.crash_count(0), 1);
  EXPECT_EQ(sim.recovery_count(0), 1);
}

TEST(FailureInjection, RegistrationSignalerSurvivesAnyWaiterCrashPoint) {
  // dsm-registration has no claim/announce gap: crash a waiter at every
  // possible step of its first Poll() and the signaler still terminates.
  // Crash-stop flavor (never recovered), driven by AllButScheduler so even
  // a hypothetical recovery could not be scheduled.
  const int n_waiters = 3;
  const int nprocs = n_waiters + 1;
  for (int crash_step = 1; crash_step <= 5; ++crash_step) {
    auto mem = make_dsm(nprocs);
    DsmRegistrationSignal alg(*mem, static_cast<ProcId>(nprocs - 1));
    std::vector<Program> programs;
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 100'000); });
    }
    programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
    Simulation sim(*mem, std::move(programs));
    for (int s = 0; s < crash_step && !sim.terminated(0); ++s) sim.step(0);
    if (!sim.terminated(0)) sim.crash(0);
    AllButScheduler sched(0);
    sim.run(sched, 10'000'000);
    for (ProcId p = 1; p < nprocs; ++p) {
      EXPECT_TRUE(sim.terminated(p))
          << "p" << p << " blocked (crash_step=" << crash_step << ")";
    }
    const auto v = check_polling_spec(sim.history());
    EXPECT_FALSE(v.has_value()) << v->what;
  }
}

TEST(FailureInjection, MultiSignalerLosersWaitForTheWinner) {
  // Three signalers race; with the winner crashed mid-signal the losers
  // must NOT return (returning would complete a Signal() that is not yet
  // observable). With no crash, everyone finishes and the spec holds.
  const int n_waiters = 4;
  const int n_signalers = 3;
  const int nprocs = n_waiters + n_signalers;
  auto mem = make_dsm(nprocs);
  MultiSignalerSignal alg(*mem, std::make_unique<DsmQueueSignal>(*mem));
  std::vector<Program> programs;
  for (int i = 0; i < n_waiters; ++i) {
    programs.emplace_back(
        [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 100'000); });
  }
  for (int i = 0; i < n_signalers; ++i) {
    programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  const auto result = sim.run(rr, 10'000'000);
  EXPECT_TRUE(result.all_terminated);
  const auto v = check_polling_spec(sim.history());
  EXPECT_FALSE(v.has_value()) << v->what;
  // check_signal_once per process still holds (each signaler signaled once).
  EXPECT_FALSE(check_signal_once(sim.history()).has_value());
}

// ---- crash/recovery semantics --------------------------------------------

TEST(CrashRecovery, CrashReleasesNothingAndRecoveryRerunsFromTheTop) {
  // One process increments a shared counter, then loops forever. Crash it
  // after the increment; the increment must survive (shared memory is
  // preserved), and recovery must re-run the program from the top (the
  // counter is incremented again — locals are lost, code is re-executed).
  auto mem = make_dsm(1);
  const VarId counter = mem->allocate_global(0, "counter");
  const VarId stop = mem->allocate_global(0, "stop");
  std::vector<Program> programs;
  programs.emplace_back([counter, stop](ProcCtx& ctx) -> ProcTask {
    co_await ctx.faa(counter, 1);
    for (;;) {
      const Word s = co_await ctx.read(stop);
      if (s != 0) break;
    }
  });
  Simulation sim(*mem, std::move(programs));
  ASSERT_TRUE(sim.run_proc_until(0, [](const StepRecord& r) {
    return r.kind == StepRecord::Kind::kMemOp && r.op.type == OpType::kFaa;
  }));
  sim.crash(0);
  EXPECT_EQ(mem->store().value(counter), 1) << "crash must not undo writes";
  sim.recover(0);
  ASSERT_TRUE(sim.run_proc_until(0, [](const StepRecord& r) {
    return r.kind == StepRecord::Kind::kMemOp && r.op.type == OpType::kFaa;
  }));
  EXPECT_EQ(mem->store().value(counter), 2) << "recovery re-runs the program";
  // History carries the fault markers; the fault trace matches.
  ASSERT_EQ(sim.fault_trace().size(), 2u);
  EXPECT_EQ(sim.fault_trace()[0].kind, Simulation::FaultRecord::Kind::kCrash);
  EXPECT_EQ(sim.fault_trace()[1].kind,
            Simulation::FaultRecord::Kind::kRecover);
}

TEST(CrashRecovery, CcModelDropsTheCrashedProcessesCache) {
  // Under CC, a crash powers down the victim's cache: a location it was
  // reading for free becomes a cold miss again after recovery.
  auto mem = make_cc(2);
  const VarId x = mem->allocate_global(7, "x");
  const VarId stop = mem->allocate_global(0, "stop");
  std::vector<Program> programs;
  programs.emplace_back([x, stop](ProcCtx& ctx) -> ProcTask {
    for (;;) {
      co_await ctx.read(x);
      const Word s = co_await ctx.read(stop);
      if (s != 0) break;
    }
  });
  programs.emplace_back([](ProcCtx&) -> ProcTask { co_return; });
  Simulation sim(*mem, std::move(programs));
  for (int i = 0; i < 6; ++i) sim.step(0);
  auto& cc = dynamic_cast<CcModel&>(mem->model());
  EXPECT_TRUE(cc.holds_copy(0, x));
  const std::uint64_t rmrs_before = mem->ledger().rmrs(0);
  sim.step(0);  // cached re-read: free
  sim.step(0);
  EXPECT_EQ(mem->ledger().rmrs(0), rmrs_before);
  sim.crash(0);
  EXPECT_FALSE(cc.holds_copy(0, x)) << "crash must drop the victim's cache";
  sim.recover(0);
  sim.step(0);  // first read after recovery: cold miss, pays an RMR
  EXPECT_GT(mem->ledger().rmrs(0), rmrs_before)
      << "re-executed code must be re-priced as cold";
}

// ---- recoverable mutual exclusion ----------------------------------------

/// Drives `victim` into its critical section, crashes it there, and runs
/// everyone else. Returns the simulation for post-mortem inspection.
struct CrashInCsRun {
  std::unique_ptr<SharedMemory> mem;
  std::unique_ptr<Simulation> sim;
  bool others_completed = false;
};

template <typename Lock>
CrashInCsRun crash_in_cs(int nprocs, int passages, bool recover_victim) {
  CrashInCsRun r;
  r.mem = make_dsm(nprocs);
  auto lock = std::make_shared<Lock>(*r.mem);
  std::vector<VarId> done;
  for (int p = 0; p < nprocs; ++p) {
    done.push_back(r.mem->allocate_global(0, "done"));
  }
  std::vector<Program> programs;
  for (int p = 0; p < nprocs; ++p) {
    if constexpr (std::is_base_of_v<RecoverableMutexAlgorithm, Lock>) {
      programs.emplace_back([lock, dv = done[p], passages](ProcCtx& ctx) {
        return recoverable_mutex_worker(ctx, lock.get(), dv, passages);
      });
    } else {
      programs.emplace_back([lock, passages](ProcCtx& ctx) {
        return mutex_worker(ctx, lock.get(), passages);
      });
    }
  }
  r.sim = std::make_unique<Simulation>(*r.mem, std::move(programs));
  // Drive the victim alone into its first critical section, then crash it.
  const bool in_cs = r.sim->run_proc_until(0, [](const StepRecord& rec) {
    return rec.kind == StepRecord::Kind::kEvent &&
           rec.event == EventKind::kCallBegin && rec.code == calls::kCritical;
  });
  EXPECT_TRUE(in_cs);
  r.sim->crash(0);
  if (recover_victim) r.sim->recover(0);
  RoundRobinScheduler rr;
  const auto result = r.sim->run(rr, 4'000'000);
  r.others_completed = true;
  for (ProcId p = 1; p < nprocs; ++p) {
    if (passages_completed(r.sim->history(), p) < passages) {
      r.others_completed = false;
    }
  }
  (void)result;
  return r;
}

TEST(CrashRecovery, McsDeadlocksAfterCrashInCriticalSection) {
  // MCS has no recovery section: the crashed holder never signals its
  // successor, so every other process spins forever. This is the contrast
  // case for the recoverable lock below.
  auto r = crash_in_cs<McsLock>(4, 3, /*recover_victim=*/false);
  EXPECT_FALSE(r.others_completed)
      << "MCS should deadlock after a crash in the CS";
  // Nobody past the victim's first passage: total completed passages stall.
  int total = 0;
  for (ProcId p = 1; p < 4; ++p) {
    total += passages_completed(r.sim->history(), p);
  }
  EXPECT_EQ(total, 0) << "the crashed holder should wedge the whole queue";
}

TEST(CrashRecovery, RecoverableLockCompletesDespiteCrashInCriticalSection) {
  // Same crash point, but the recoverable lock's recovery section releases
  // the orphaned hold, and the other processes finish all their passages.
  // Mutual exclusion must hold on the crashy history.
  auto r = crash_in_cs<RecoverableSpinLock>(4, 3, /*recover_victim=*/true);
  EXPECT_TRUE(r.others_completed)
      << "recoverable lock must make progress after the crash";
  const auto report = analyze_crash_run(r.sim->history());
  EXPECT_TRUE(report.mutual_exclusion_ok);
  EXPECT_EQ(report.crashes, 1);
  EXPECT_EQ(report.recoveries, 1);
}

/// Fresh-world builder for crash sweeps over a recoverable-lock config.
ExploreBuilder recoverable_lock_builder(int nprocs, int passages) {
  return [=]() {
    ExploreInstance inst;
    auto mem = make_dsm(nprocs);
    auto lock = std::make_shared<RecoverableSpinLock>(*mem);
    std::vector<VarId> done;
    for (int p = 0; p < nprocs; ++p) {
      done.push_back(mem->allocate_global(0, "done"));
    }
    std::vector<Program> programs;
    for (int p = 0; p < nprocs; ++p) {
      programs.emplace_back([lock, dv = done[p], passages](ProcCtx& ctx) {
        return recoverable_mutex_worker(ctx, lock.get(), dv, passages);
      });
    }
    inst.sim = std::make_unique<Simulation>(*mem, std::move(programs));
    inst.keepalive = lock;
    inst.mem = std::move(mem);
    return inst;
  };
}

ExploreChecker mutual_exclusion_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_mutual_exclusion(h); v.has_value()) {
      return v->what;
    }
    return std::nullopt;
  };
}

TEST(CrashRecovery, RecoverableLockSurvivesEveryCrashPoint) {
  // Exhaustive: crash proc 0 at every step of a 3-proc recoverable-lock
  // run; mutual exclusion must hold at every crash point and every run must
  // complete. (FIFO is *not* asserted — crashes legitimately reorder
  // waiters; analyze_crash_run reports inversions instead.)
  const auto build = recoverable_lock_builder(3, 2);
  const auto check = mutual_exclusion_checker();
  const CrashSweepResult sweep = sweep_crash_points(build, check, 0);
  EXPECT_FALSE(sweep.violation.has_value())
      << *sweep.violation << " at crash point "
      << sweep.violating_crash_point;
  EXPECT_GT(sweep.crash_points, 0);
  EXPECT_EQ(sweep.stuck, 0) << "every crash point must still complete";
  EXPECT_EQ(sweep.wedged, 0);
  EXPECT_EQ(sweep.completed, sweep.crash_points);
}

TEST(CrashRecovery, CrashStopSweepSeparatesWedgedFromStuck) {
  // Crash-stop flavor (recover_victim = false): the victim never comes
  // back, so no run can complete, and the sweep must tell the two distinct
  // progress failures apart. Early crash points (victim down before it
  // acquires) let the survivors finish all their passages, leaving only the
  // corpse non-terminated — kWedged, unfixable by any budget. Mid-CS crash
  // points leave the survivors spinning on the orphaned owner word forever —
  // kBudget, reported as `stuck`. A sweep that lumped these together (the
  // old fair_drive early-break did) could not make this assertion.
  const auto build = recoverable_lock_builder(3, 2);
  const auto check = mutual_exclusion_checker();
  const CrashSweepResult sweep = sweep_crash_points(
      build, check, 0,
      {.recover_after = 20, .max_steps = 20'000, .recover_victim = false});
  EXPECT_FALSE(sweep.violation.has_value()) << *sweep.violation;
  EXPECT_GT(sweep.crash_points, 0);
  EXPECT_EQ(sweep.completed, 0) << "the victim can never terminate";
  EXPECT_GT(sweep.wedged, 0) << "pre-acquire crashes wedge the run";
  EXPECT_GT(sweep.stuck, 0) << "in-CS crashes leave survivors spinning";
  EXPECT_EQ(sweep.wedged + sweep.stuck, sweep.crash_points);
}

TEST(CrashRecovery, BudgetExhaustionIsStuckNotWedged) {
  // With the victim recovered, no process is ever permanently down, so a
  // starved step budget must surface as `stuck` (kBudget: runnable work
  // left) and never as `wedged`. The generous-budget run above turns these
  // same crash points into completions — pinning that `stuck` really means
  // "needs more budget", not "dead".
  const auto build = recoverable_lock_builder(3, 2);
  const auto check = mutual_exclusion_checker();
  const CrashSweepResult sweep = sweep_crash_points(
      build, check, 0,
      {.recover_after = 10, .max_steps = 40, .recover_victim = true});
  EXPECT_GT(sweep.crash_points, 0);
  EXPECT_GT(sweep.stuck, 0) << "40 steps cannot finish 3x2 passages";
  EXPECT_EQ(sweep.wedged, 0) << "a recovered world is never wedged";
}

// ---- deterministic fault plans -------------------------------------------

/// Builds a 4-proc recoverable-lock simulation for fault-plan runs.
struct PlanRun {
  std::unique_ptr<SharedMemory> mem;
  std::unique_ptr<Simulation> sim;
  std::shared_ptr<RecoverableSpinLock> lock;
};

PlanRun make_plan_run(int nprocs, int passages) {
  PlanRun r;
  r.mem = make_dsm(nprocs);
  r.lock = std::make_shared<RecoverableSpinLock>(*r.mem);
  std::vector<VarId> done;
  for (int p = 0; p < nprocs; ++p) {
    done.push_back(r.mem->allocate_global(0, "done"));
  }
  std::vector<Program> programs;
  for (int p = 0; p < nprocs; ++p) {
    programs.emplace_back(
        [lock = r.lock, dv = done[p], passages](ProcCtx& ctx) {
          return recoverable_mutex_worker(ctx, lock.get(), dv, passages);
        });
  }
  r.sim = std::make_unique<Simulation>(*r.mem, std::move(programs));
  return r;
}

TEST(FaultPlanDeterminism, SamePlanSameSeedSameHistory) {
  // The acceptance criterion: same FaultPlan + same scheduler + same seed
  // => identical history, including every crash and recovery step.
  auto run_once = [](std::string* rendered,
                     std::vector<Simulation::FaultRecord>* trace,
                     std::vector<ProcId>* schedule) {
    PlanRun r = make_plan_run(4, 3);
    RandomScheduler inner(42);
    FaultScheduler faulty(inner,
                          FaultPlan::random(/*seed=*/7, /*crash_rate=*/0.02,
                                            /*recover_after=*/40,
                                            /*max_crashes=*/8));
    r.sim->run(faulty, 2'000'000);
    EXPECT_GT(faulty.crashes_injected(), 0)
        << "rate 2% over thousands of steps should crash somebody";
    *rendered = r.sim->history().to_string();
    *trace = r.sim->fault_trace();
    *schedule = r.sim->schedule();
  };
  std::string h1, h2;
  std::vector<Simulation::FaultRecord> t1, t2;
  std::vector<ProcId> s1, s2;
  run_once(&h1, &t1, &s1);
  run_once(&h2, &t2, &s2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(s1, s2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].kind, t2[i].kind);
    EXPECT_EQ(t1[i].proc, t2[i].proc);
    EXPECT_EQ(t1[i].at, t2[i].at);
  }
}

TEST(FaultPlanDeterminism, ScriptedFaultTraceReplaysCrashyRunExactly) {
  // Record a crashy run, then replay schedule + fault trace on a fresh
  // world: the histories must be bit-identical (crashes, recoveries, and
  // the RMR ledger included).
  PlanRun first = make_plan_run(4, 3);
  RandomScheduler inner(9);
  FaultScheduler faulty(inner, FaultPlan::random(3, 0.02, 30, 6));
  first.sim->run(faulty, 2'000'000);
  ASSERT_FALSE(first.sim->fault_trace().empty());

  PlanRun second = make_plan_run(4, 3);
  ScriptedScheduler scripted(first.sim->schedule());
  FaultScheduler replay(scripted,
                        FaultPlan::scripted_trace(first.sim->fault_trace()));
  second.sim->run(replay, 2'000'000);

  EXPECT_EQ(first.sim->history().to_string(),
            second.sim->history().to_string());
  EXPECT_EQ(first.sim->schedule(), second.sim->schedule());
  EXPECT_EQ(first.mem->ledger().total_rmrs(),
            second.mem->ledger().total_rmrs());
}

TEST(FaultPlanDeterminism, CrashAtStepAndOnNthRmrFireWhereAsked) {
  {
    PlanRun r = make_plan_run(2, 2);
    RoundRobinScheduler rr;
    FaultScheduler faulty(rr, FaultPlan::crash_at_step(1, 5, 10));
    r.sim->run(faulty, 1'000'000);
    EXPECT_EQ(r.sim->crash_count(1), 1);
    EXPECT_EQ(r.sim->recovery_count(1), 1);
    EXPECT_TRUE(r.sim->terminated(1)) << "victim recovers and finishes";
  }
  {
    PlanRun r = make_plan_run(2, 2);
    RoundRobinScheduler rr;
    FaultScheduler faulty(rr, FaultPlan::crash_on_nth_rmr(0, 4, 10));
    r.sim->run(faulty, 1'000'000);
    EXPECT_EQ(r.sim->crash_count(0), 1);
    EXPECT_GE(r.mem->ledger().rmrs(0), 4u);
    EXPECT_TRUE(r.sim->terminated(0));
  }
}

TEST(FaultPlanDeterminism, ParseFaultPlanGrammar) {
  const FaultPlan step = parse_fault_plan("step:proc=2,n=17,recover=33");
  ASSERT_EQ(step.triggers.size(), 1u);
  EXPECT_EQ(step.triggers[0].kind, FaultPlan::Trigger::Kind::kAtStep);
  EXPECT_EQ(step.triggers[0].proc, 2);
  EXPECT_EQ(step.triggers[0].n, 17u);
  EXPECT_EQ(step.recover_after, 33u);

  const FaultPlan rmr = parse_fault_plan("rmr:proc=0,n=9");
  EXPECT_EQ(rmr.triggers[0].kind, FaultPlan::Trigger::Kind::kOnNthRmr);
  EXPECT_EQ(rmr.recover_after, 100u) << "default downtime";

  const FaultPlan rnd =
      parse_fault_plan("random:rate=0.25,seed=11,recover=50,max=3");
  EXPECT_EQ(rnd.triggers[0].kind, FaultPlan::Trigger::Kind::kRandom);
  EXPECT_EQ(rnd.triggers[0].per_million, 250'000u);
  EXPECT_EQ(rnd.seed, 11u);
  EXPECT_EQ(rnd.max_crashes, 3);

  EXPECT_THROW(parse_fault_plan("bogus"), std::logic_error);
  EXPECT_THROW(parse_fault_plan("step:n=1"), std::logic_error);
  EXPECT_THROW(parse_fault_plan("random:seed=4"), std::logic_error);
}

// Two-phase LL/SC program for the reservation-across-crash regression: the
// first incarnation takes an LL and crashes inside the window where the
// reservation is live; the recovered incarnation sees phase != 0 and goes
// straight to SC without a fresh LL — which the RME model requires to fail
// (the crash powered the processor down; no local state, including the
// LL reservation, survives).
ProcTask ll_then_crash_then_sc(ProcCtx& ctx, VarId v, VarId phase,
                               VarId out) {
  const Word ph = co_await ctx.read(phase);
  if (ph == 0) {
    co_await ctx.ll(v);
    co_await ctx.write(phase, 1);
    co_await ctx.mark(/*code=*/7);  // crash here: reservation held
    co_await ctx.sc(v, 41);
  } else {
    const Word ok = co_await ctx.sc(v, 42);  // no fresh LL this incarnation
    co_await ctx.write(out, ok);
  }
}

TEST(CrashRecovery, CrashInvalidatesLlReservation) {
  auto mem = make_dsm(1);
  const VarId v = mem->allocate_global(0, "v");
  const VarId phase = mem->allocate_global(0, "phase");
  const VarId out = mem->allocate_global(99, "out");
  Simulation sim(*mem, {[v, phase, out](ProcCtx& ctx) {
    return ll_then_crash_then_sc(ctx, v, phase, out);
  }});
  ASSERT_TRUE(sim.run_proc_until(0, [](const StepRecord& r) {
    return r.kind == StepRecord::Kind::kEvent &&
           r.event == EventKind::kMark && r.code == 7;
  }));
  sim.crash(0);
  sim.recover(0);
  sim.run_to_termination(0, 1'000);
  // The recovered process issued SC with no LL in its post-recovery
  // history: the SC must fail and the variable must keep its value.
  EXPECT_EQ(mem->store().value(out), 0) << "SC succeeded without a fresh LL";
  EXPECT_EQ(mem->store().value(v), 0);
}

}  // namespace
}  // namespace rmrsim
