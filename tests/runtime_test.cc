// Unit tests for the coroutine runtime: stepping, pending-action visibility,
// nested procedures, directive policies, history recording, and replay
// determinism — the machinery everything above it rests on.
#include <gtest/gtest.h>

#include "memory/shared_memory.h"
#include "sched/schedulers.h"
#include "runtime/simulation.h"

namespace rmrsim {
namespace {

// A tiny program: writes its id to `target`, reads it back, terminates.
ProcTask write_then_read(ProcCtx& ctx, VarId target) {
  co_await ctx.write(target, ctx.id());
  co_await ctx.read(target);
}

// Nested procedures, two levels deep.
SubTask<Word> add_one(ProcCtx& ctx, VarId v) {
  const Word x = co_await ctx.read(v);
  co_await ctx.write(v, x + 1);
  co_return x + 1;
}

SubTask<Word> add_two(ProcCtx& ctx, VarId v) {
  const Word a = co_await add_one(ctx, v);
  const Word b = co_await add_one(ctx, v);
  (void)a;
  co_return b;
}

ProcTask nested_program(ProcCtx& ctx, VarId v, VarId out) {
  const Word r = co_await add_two(ctx, v);
  co_await ctx.write(out, r);
}

// Directive-driven: 1 => increment v, 0 => terminate.
ProcTask directive_program(ProcCtx& ctx, VarId v) {
  for (;;) {
    const Directive d = co_await ctx.next_directive();
    if (d.action == Directive::kTerminate) co_return;
    co_await ctx.faa(v, d.arg);
  }
}

TEST(Simulation, PendingVisibleBeforeApplied) {
  auto mem = make_dsm(1);
  const VarId v = mem->allocate_local(0, 0);
  Simulation sim(*mem, {[v](ProcCtx& ctx) { return write_then_read(ctx, v); }});

  ASSERT_TRUE(sim.runnable(0));
  const PendingAction& a = sim.pending(0);
  ASSERT_EQ(a.kind, ActionKind::kMemOp);
  EXPECT_EQ(a.op.type, OpType::kWrite);
  EXPECT_EQ(a.op.var, v);
  // Nothing has been applied yet.
  EXPECT_EQ(mem->store().value(v), 0);
  EXPECT_EQ(mem->ledger().total_ops(), 0u);

  sim.step(0);
  EXPECT_EQ(mem->store().value(v), 0);  // p0 wrote its id, which is 0
  EXPECT_EQ(sim.pending(0).op.type, OpType::kRead);
  sim.step(0);
  EXPECT_TRUE(sim.terminated(0));
  EXPECT_TRUE(sim.all_terminated());
  EXPECT_EQ(sim.history().size(), 2u);
  EXPECT_TRUE(sim.history().records().back().terminated_after);
}

TEST(Simulation, NestedSubtasksBubbleToScheduler) {
  auto mem = make_dsm(1);
  const VarId v = mem->allocate_local(0, 10);
  const VarId out = mem->allocate_local(0, -1);
  Simulation sim(*mem, {[v, out](ProcCtx& ctx) {
    return nested_program(ctx, v, out);
  }});
  // add_two performs 2x(read+write) plus the final write: 5 memory steps.
  int steps = 0;
  while (!sim.all_terminated()) {
    sim.step(0);
    ++steps;
  }
  EXPECT_EQ(steps, 5);
  EXPECT_EQ(mem->store().value(v), 12);
  EXPECT_EQ(mem->store().value(out), 12);
}

TEST(Simulation, DirectivePolicyDrivesClients) {
  auto mem = make_dsm(1);
  const VarId v = mem->allocate_local(0, 0);
  Simulation sim(
      *mem, {[v](ProcCtx& ctx) { return directive_program(ctx, v); }},
      [](ProcId, int index) {
        // Three increments of 5, then terminate.
        return index < 3 ? Directive{1, 5} : Directive{Directive::kTerminate};
      });
  while (!sim.all_terminated()) sim.step(0);
  EXPECT_EQ(mem->store().value(v), 15);
  EXPECT_EQ(sim.directives_consumed(0), 4);
}

TEST(Simulation, DirectiveWithoutPolicyThrows) {
  auto mem = make_dsm(1);
  const VarId v = mem->allocate_local(0, 0);
  Simulation sim(*mem,
                 {[v](ProcCtx& ctx) { return directive_program(ctx, v); }});
  EXPECT_THROW(sim.step(0), std::logic_error);
}

TEST(Simulation, ProgramExceptionsPropagateFromStep) {
  auto mem = make_dsm(1);
  const VarId v = mem->allocate_local(0, 0);
  Simulation sim(*mem, {[v](ProcCtx& ctx) -> ProcTask {
    co_await ctx.read(v);
    throw std::runtime_error("algorithm bug");
  }});
  EXPECT_THROW(sim.step(0), std::runtime_error);
}

TEST(Simulation, RunUnderRoundRobinIsFair) {
  auto mem = make_dsm(3);
  const VarId v = mem->allocate_global(0);
  std::vector<Program> programs;
  for (int i = 0; i < 3; ++i) {
    programs.emplace_back(
        [v](ProcCtx& ctx) -> ProcTask { co_await ctx.faa(v, 1); });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  const auto result = sim.run(rr, 1000);
  EXPECT_TRUE(result.all_terminated);
  EXPECT_EQ(result.steps, 3u);
  EXPECT_EQ(mem->store().value(v), 3);
}

TEST(Simulation, ScheduleReplayReproducesHistoryExactly) {
  // Determinism: replaying the recorded schedule on a fresh instance yields
  // an identical history — the foundation of the adversary's erasure.
  const auto build = [](SharedMemory& mem) {
    const VarId a = mem.allocate_global(0, "a");
    std::vector<Program> programs;
    for (int i = 0; i < 4; ++i) {
      programs.emplace_back([a](ProcCtx& ctx) -> ProcTask {
        const Word x = co_await ctx.faa(a, 1);
        co_await ctx.write(a, x + 10);
        co_await ctx.read(a);
      });
    }
    return programs;
  };

  auto mem1 = make_dsm(4);
  Simulation sim1(*mem1, build(*mem1));
  RandomScheduler rand(12345);
  sim1.run(rand, 10'000);
  ASSERT_TRUE(sim1.all_terminated());

  auto mem2 = make_dsm(4);
  Simulation sim2(*mem2, build(*mem2));
  ScriptedScheduler script(sim1.schedule());
  sim2.run(script, 10'000);

  ASSERT_EQ(sim1.history().size(), sim2.history().size());
  for (std::size_t i = 0; i < sim1.history().size(); ++i) {
    const StepRecord& r1 = sim1.history().records()[i];
    const StepRecord& r2 = sim2.history().records()[i];
    EXPECT_EQ(r1.proc, r2.proc);
    EXPECT_EQ(static_cast<int>(r1.kind), static_cast<int>(r2.kind));
    EXPECT_EQ(r1.outcome.result, r2.outcome.result);
    EXPECT_EQ(r1.outcome.rmr, r2.outcome.rmr);
  }
}

TEST(Simulation, RunUntilRmrPendingStopsBeforeTheRmr) {
  auto mem = make_dsm(2);
  const VarId mine = mem->allocate_local(0, 0);
  const VarId remote = mem->allocate_local(1, 0);
  Simulation sim(*mem, {[mine, remote](ProcCtx& ctx) -> ProcTask {
                          co_await ctx.read(mine);   // local
                          co_await ctx.write(mine, 1);  // local
                          co_await ctx.read(remote);  // RMR
                          co_await ctx.read(mine);   // local
                        },
                        {}});
  const auto stop = sim.run_until_rmr_pending(0, 100);
  EXPECT_EQ(stop, Simulation::Stop::kRmrPending);
  // The two local steps applied; the RMR is pending, not applied.
  EXPECT_EQ(sim.history().mem_steps(0), 2u);
  EXPECT_EQ(mem->ledger().rmrs(0), 0u);
  EXPECT_EQ(sim.pending(0).op.var, remote);
  // Finishing the process applies the RMR.
  sim.run_to_termination(0, 100);
  EXPECT_EQ(mem->ledger().rmrs(0), 1u);
}

TEST(Simulation, SoloSchedulerRunsOnlyOneProcess) {
  auto mem = make_dsm(2);
  const VarId v = mem->allocate_global(0);
  std::vector<Program> programs;
  for (int i = 0; i < 2; ++i) {
    programs.emplace_back(
        [v](ProcCtx& ctx) -> ProcTask { co_await ctx.faa(v, 1); });
  }
  Simulation sim(*mem, std::move(programs));
  SoloScheduler solo(1);
  sim.run(solo, 100);
  EXPECT_TRUE(sim.terminated(1));
  EXPECT_FALSE(sim.terminated(0));
  EXPECT_EQ(mem->store().value(v), 1);
}

TEST(History, SeesTouchesRegularity) {
  auto mem = make_dsm(3);
  const VarId at0 = mem->allocate_local(0, 0);
  std::vector<Program> programs(3);
  programs[1] = [at0](ProcCtx& ctx) -> ProcTask {
    co_await ctx.write(at0, 7);  // p1 touches p0
  };
  programs[2] = [at0](ProcCtx& ctx) -> ProcTask {
    co_await ctx.read(at0);  // p2 sees p1 (and touches p0)
  };
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  sim.run(rr, 100);

  const History& h = sim.history();
  EXPECT_TRUE(h.touches(1, 0));
  EXPECT_TRUE(h.touches(2, 0));
  EXPECT_TRUE(h.sees(2, 1));
  EXPECT_FALSE(h.sees(1, 2));
  EXPECT_TRUE(h.seen_by_other(1));
  EXPECT_FALSE(h.seen_by_other(2));
  EXPECT_TRUE(h.touched_by_other(0));
  // p0 took no step: not a participant.
  EXPECT_FALSE(h.participated(0));
  // p1 and p2 finished, so the history is regular despite the cross-module
  // traffic.
  EXPECT_TRUE(h.is_regular());
}

TEST(History, IrregularWhenActiveProcessWasSeen) {
  auto mem = make_dsm(2);
  const VarId v = mem->allocate_global(0);
  std::vector<Program> programs(2);
  programs[0] = [v](ProcCtx& ctx) -> ProcTask {
    co_await ctx.write(v, 1);
    co_await ctx.read(v);  // keeps p0 unfinished after its write is seen
    co_await ctx.read(v);
  };
  programs[1] = [v](ProcCtx& ctx) -> ProcTask { co_await ctx.read(v); };
  Simulation sim(*mem, std::move(programs));
  sim.step(0);  // p0 writes v
  sim.step(1);  // p1 reads v, sees p0 (active!), terminates
  EXPECT_FALSE(sim.history().is_regular());
}

}  // namespace
}  // namespace rmrsim
