// Differential tests for the coherence-protocol fleet: every protocol rides
// the SAME CoherenceEvent stream (one schedule, one RMR tally), so the
// protocols can only disagree because their state machines differ — and the
// ways they differ are theorems this file checks on seeded random traces:
//
//   - broadcast-bus messages == RMRs (Section 8 "at par");
//   - MESI / MESIF / MOESI destroy exactly the copies the ideal directory
//     says exist (identical valid sets, zero superfluous invalidations),
//     and pay identical transfer-message counts;
//   - Dragon never invalidates; its update messages dominate the ideal
//     directory's invalidation count (every copy the others would destroy,
//     Dragon refreshes — and it may hold strictly more copies);
//   - MOESI == MESI minus write-backs, exactly: same messages, and the
//     cycle gap is precisely write_back * (MESI write-backs);
//   - MESIF == MESI cycle-for-cycle until an F holder crashes, after which
//     MESIF can only be dearer (the only-S memory-fetch fallback);
//   - per-protocol cycle totals decompose exactly over the cost table, and
//     per-processor cycles sum to the total.
//
// The same harness doubles as the property-based invariant sweep (fleet
// invariants checked after EVERY event, crashes included), and the file
// also covers counter reset/reproducibility, listener re-registration
// across Simulation::fork, and the write-buffer front end.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coherence/fleet.h"
#include "coherence/protocols/mesi.h"
#include "coherence/write_buffer.h"
#include "common/rng.h"
#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "runtime/simulation.h"

namespace rmrsim {
namespace {

// A CC world with the full fleet listening.
struct World {
  std::unique_ptr<SharedMemory> mem;
  ProtocolFleet fleet;
  std::vector<VarId> vars;

  World(int nprocs, int nvars) : mem(make_cc(nprocs)), fleet(nprocs) {
    mem->set_listener(fleet.listener());
    for (int i = 0; i < nvars; ++i) vars.push_back(mem->allocate_global(0));
  }
};

// Applies `steps` random accesses (reads, writes, CAS, FAA — hits and
// misses, contended and not), optionally crashing processors along the way,
// and checks every fleet invariant after every single event.
void drive_random(World& w, std::uint64_t seed, int steps, bool crashes) {
  SplitMix64 rng(seed);
  const int n = w.fleet.nprocs();
  std::vector<bool> alive(static_cast<std::size_t>(n), true);
  int live = n;
  for (int i = 0; i < steps; ++i) {
    const auto p = static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(n)));
    if (!alive[static_cast<std::size_t>(p)]) continue;
    if (crashes && live > 2 && rng.chance(1, 40)) {
      w.mem->notify_crash(p);
      alive[static_cast<std::size_t>(p)] = false;
      --live;
    } else {
      const VarId v = w.vars[rng.below(w.vars.size())];
      switch (rng.below(6)) {
        case 0:
        case 1:
          w.mem->apply(p, MemOp::read(v));
          break;
        case 2:
        case 3:
          w.mem->apply(p, MemOp::write(v, static_cast<Word>(rng.below(4))));
          break;
        case 4:
          w.mem->apply(p, MemOp::cas(v, static_cast<Word>(rng.below(4)),
                                     static_cast<Word>(rng.below(4))));
          break;
        default:
          w.mem->apply(p, MemOp::faa(v, 1));
          break;
      }
    }
    const auto viol = w.fleet.check_invariants();
    ASSERT_FALSE(viol.has_value())
        << "seed " << seed << " step " << i << ": " << *viol;
  }
}

// The cycle ledger must decompose exactly over the default cost table, and
// transfers must be exactly the two fill kinds.
void expect_cycle_arithmetic(const SnoopingCache& c) {
  const ProtocolStats& s = c.stats();
  EXPECT_EQ(s.cycles, 100 * s.memory_fetches + 12 * s.cache_transfers +
                          2 * s.bus_signals + 2 * s.bus_updates +
                          100 * s.write_backs)
      << c.name();
  EXPECT_EQ(c.transfer_messages(), s.memory_fetches + s.cache_transfers)
      << c.name();
  std::uint64_t per_proc = 0;
  for (ProcId p = 0; p < c.nprocs(); ++p) per_proc += c.proc_cycles(p);
  EXPECT_EQ(per_proc, s.cycles) << c.name();
}

void expect_relations(World& w, bool crashed) {
  ProtocolFleet& f = w.fleet;
  SnoopingCache& mesi = f.mesi();
  SnoopingCache& mesif = f.mesif();
  SnoopingCache& moesi = f.moesi();
  SnoopingCache& dragon = f.dragon();

  // (a) Broadcast bus at par with RMRs.
  EXPECT_EQ(f.bus().transfer_messages(), w.mem->ledger().total_rmrs());

  // (b) The invalidation protocols destroy exactly the copies the ideal
  // directory says exist — and a snooping cache never sends a superfluous
  // invalidation.
  EXPECT_EQ(mesi.useful_invalidations(), f.ideal().invalidation_messages());
  EXPECT_EQ(mesif.useful_invalidations(), mesi.useful_invalidations());
  EXPECT_EQ(moesi.useful_invalidations(), mesi.useful_invalidations());
  for (SnoopingCache* c : {&mesi, &mesif, &moesi, &dragon}) {
    EXPECT_EQ(c->superfluous_invalidations(), 0u) << c->name();
    expect_cycle_arithmetic(*c);
  }

  // (c) Identical valid sets => identical miss pattern => identical
  // transfer-message counts across the invalidation family.
  EXPECT_EQ(mesif.transfer_messages(), mesi.transfer_messages());
  EXPECT_EQ(moesi.transfer_messages(), mesi.transfer_messages());

  // (d) Dragon is pure write-update: zero invalidations ever; its updates
  // dominate the copies the others destroy (it refreshes each of those and
  // possibly more, since its copies never die); its copies outliving
  // everything means it can only miss less.
  EXPECT_EQ(dragon.invalidation_messages(), 0u);
  EXPECT_GE(dragon.update_messages(), f.ideal().invalidation_messages());
  EXPECT_LE(dragon.transfer_messages(), mesi.transfer_messages());

  // (e) MOESI is exactly MESI minus the write-backs: same messages, and
  // the cycle gap is precisely the write-back traffic MESI paid.
  EXPECT_EQ(moesi.stats().write_backs, 0u);
  EXPECT_EQ(moesi.invalidation_messages(), mesi.invalidation_messages());
  EXPECT_EQ(mesi.total_cycles() - moesi.total_cycles(),
            100 * mesi.stats().write_backs);

  // (f) MESIF matches MESI cycle-for-cycle on crash-free traces; once an F
  // holder has crashed it can only be dearer (memory-fetch fallback).
  EXPECT_EQ(mesif.invalidation_messages(), mesi.invalidation_messages());
  if (crashed) {
    EXPECT_GE(mesif.total_cycles(), mesi.total_cycles());
  } else {
    EXPECT_EQ(mesif.total_cycles(), mesi.total_cycles());
  }
}

TEST(CoherenceDifferential, CrossProtocolRelationsOnRandomTraces) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    World w(/*nprocs=*/6, /*nvars=*/3);
    drive_random(w, seed, /*steps=*/250, /*crashes=*/false);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_relations(w, /*crashed=*/false);
  }
}

TEST(CoherenceDifferential, CrossProtocolRelationsSurviveCrashes) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    World w(/*nprocs=*/6, /*nvars=*/3);
    drive_random(w, seed, /*steps=*/250, /*crashes=*/true);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_relations(w, /*crashed=*/true);
  }
}

// MessageCounter::reset must restore every fleet member to a truly blank
// slate: replaying the identical trace after reset reproduces the identical
// tallies, bit for bit.
TEST(CoherenceDifferential, ResetReproducesIdenticalTallies) {
  World w(/*nprocs=*/6, /*nvars=*/3);
  drive_random(w, /*seed=*/99, /*steps=*/250, /*crashes=*/false);

  struct Tally {
    std::uint64_t transfers, invals, useful, updates, total;
  };
  std::vector<Tally> before;
  for (MessageCounter* c : w.fleet.counters()) {
    before.push_back({c->transfer_messages(), c->invalidation_messages(),
                      c->useful_invalidations(), c->update_messages(),
                      c->total_messages()});
  }
  std::vector<std::uint64_t> cycles_before;
  for (const auto& c : w.fleet.caches()) {
    cycles_before.push_back(c->total_cycles());
  }

  w.fleet.reset();
  for (MessageCounter* c : w.fleet.counters()) {
    EXPECT_EQ(c->transfer_messages(), 0u) << c->name();
    EXPECT_EQ(c->invalidation_messages(), 0u) << c->name();
    EXPECT_EQ(c->update_messages(), 0u) << c->name();
    EXPECT_EQ(c->total_messages(), 0u) << c->name();
  }
  for (const auto& c : w.fleet.caches()) {
    EXPECT_EQ(c->total_cycles(), 0u) << c->name();
    for (ProcId p = 0; p < c->nprocs(); ++p) {
      EXPECT_EQ(c->proc_cycles(p), 0u) << c->name();
    }
  }

  w.mem->reset();  // keeps the listener attached (callers own it)
  drive_random(w, /*seed=*/99, /*steps=*/250, /*crashes=*/false);
  std::size_t i = 0;
  for (MessageCounter* c : w.fleet.counters()) {
    EXPECT_EQ(c->transfer_messages(), before[i].transfers) << c->name();
    EXPECT_EQ(c->invalidation_messages(), before[i].invals) << c->name();
    EXPECT_EQ(c->useful_invalidations(), before[i].useful) << c->name();
    EXPECT_EQ(c->update_messages(), before[i].updates) << c->name();
    EXPECT_EQ(c->total_messages(), before[i].total) << c->name();
    ++i;
  }
  i = 0;
  for (const auto& c : w.fleet.caches()) {
    EXPECT_EQ(c->total_cycles(), cycles_before[i++]) << c->name();
  }
}

// ---- listener re-registration across Simulation::fork -------------------

ProcTask pingpong(ProcCtx& ctx, VarId v, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await ctx.write(v, ctx.id());
    co_await ctx.read(v);
  }
}

void run_round_robin(Simulation& sim, int nprocs) {
  while (!sim.all_terminated()) {
    for (ProcId p = 0; p < nprocs; ++p) {
      if (sim.runnable(p)) sim.step(p);
    }
  }
}

// A restored world deliberately carries NO coherence listener (snapshots
// capture the priced world, not the pricing observers): callers must
// re-register. The supported recipe — copy the cache at the fork point,
// attach the copy to the restored memory — must make the fork's tallies
// indistinguishable from the original's under the same schedule.
TEST(CoherenceDifferential, ForkedWorldNeedsListenerReRegistration) {
  const int n = 2;
  auto mem = make_cc(n);
  const VarId v = mem->allocate_global(0);
  MesiCache mesi(n);
  mem->set_listener(&mesi);

  Simulation sim(*mem, {[v](ProcCtx& ctx) { return pingpong(ctx, v, 4); },
                        [v](ProcCtx& ctx) { return pingpong(ctx, v, 4); }});
  sim.enable_fork_log();
  for (int i = 0; i < 6; ++i) sim.step(i % 2);

  MesiCache forked_cache = mesi;  // counter state at the fork point
  Simulation::ForkedWorld fw = sim.fork();
  // The clone has no listener: re-registration is the caller's job.
  EXPECT_EQ(fw.mem->listener(), nullptr);
  fw.mem->set_listener(&forked_cache);

  run_round_robin(sim, n);
  run_round_robin(*fw.sim, n);

  EXPECT_EQ(forked_cache.transfer_messages(), mesi.transfer_messages());
  EXPECT_EQ(forked_cache.invalidation_messages(),
            mesi.invalidation_messages());
  EXPECT_EQ(forked_cache.useful_invalidations(),
            mesi.useful_invalidations());
  EXPECT_EQ(forked_cache.total_cycles(), mesi.total_cycles());
  EXPECT_EQ(forked_cache.check_invariants(), std::nullopt);
  EXPECT_EQ(mesi.check_invariants(), std::nullopt);
  EXPECT_GT(mesi.total_cycles(), 0u);
}

// ---- write-buffer front end ---------------------------------------------

struct RecordingListener final : CoherenceListener {
  std::vector<CoherenceEvent> events;
  std::vector<ProcId> crashes;
  int flushes = 0;
  void on_event(const CoherenceEvent& e) override { events.push_back(e); }
  void on_crash(ProcId p) override { crashes.push_back(p); }
  void flush() override { ++flushes; }
};

CoherenceEvent make_event(ProcId p, VarId v, OpType op) {
  CoherenceEvent e;
  e.proc = p;
  e.var = v;
  e.op = op;
  e.rmr = true;
  e.nontrivial = op != OpType::kRead;
  return e;
}

TEST(WriteBufferTest, CoalescesStoresAndForwardsOwnReads) {
  RecordingListener rec;
  WriteBuffer wb(&rec, /*nprocs=*/2, /*capacity=*/4);
  wb.on_event(make_event(0, 0, OpType::kWrite));
  wb.on_event(make_event(0, 0, OpType::kWrite));
  wb.on_event(make_event(0, 0, OpType::kWrite));
  EXPECT_EQ(wb.pending(0), 1);  // coalesced in place
  EXPECT_EQ(wb.buffered_writes(), 1u);
  EXPECT_EQ(wb.coalesced_writes(), 2u);

  wb.on_event(make_event(0, 0, OpType::kRead));  // store forwarding
  EXPECT_EQ(wb.forwarded_reads(), 1u);
  EXPECT_TRUE(rec.events.empty());  // protocol saw nothing yet

  wb.flush();
  ASSERT_EQ(rec.events.size(), 1u);  // the single surviving store
  EXPECT_EQ(rec.events[0].op, OpType::kWrite);
  EXPECT_EQ(wb.drained_writes(), 1u);
  EXPECT_EQ(wb.pending(0), 0);
  EXPECT_EQ(rec.flushes, 1);
}

TEST(WriteBufferTest, CrossProcessorConflictDrainsBeforeTheAccess) {
  RecordingListener rec;
  WriteBuffer wb(&rec, /*nprocs=*/2, /*capacity=*/4);
  wb.on_event(make_event(0, 7, OpType::kWrite));
  EXPECT_TRUE(rec.events.empty());

  // p1 touches the same variable: p0's buffered store must become visible
  // first, then p1's read reaches the protocol.
  wb.on_event(make_event(1, 7, OpType::kRead));
  ASSERT_EQ(rec.events.size(), 2u);
  EXPECT_EQ(rec.events[0].proc, 0);
  EXPECT_EQ(rec.events[0].op, OpType::kWrite);
  EXPECT_EQ(rec.events[1].proc, 1);
  EXPECT_EQ(rec.events[1].op, OpType::kRead);

  // A read of an unrelated variable passes straight through.
  wb.on_event(make_event(1, 8, OpType::kRead));
  EXPECT_EQ(rec.events.size(), 3u);
}

TEST(WriteBufferTest, AtomicsAreAFullBarrierForTheIssuer) {
  RecordingListener rec;
  WriteBuffer wb(&rec, /*nprocs=*/2, /*capacity=*/4);
  wb.on_event(make_event(0, 1, OpType::kWrite));
  wb.on_event(make_event(0, 2, OpType::kWrite));
  wb.on_event(make_event(0, 9, OpType::kCas));
  ASSERT_EQ(rec.events.size(), 3u);  // both stores, FIFO order, then the CAS
  EXPECT_EQ(rec.events[0].var, 1);
  EXPECT_EQ(rec.events[1].var, 2);
  EXPECT_EQ(rec.events[2].op, OpType::kCas);
  EXPECT_EQ(wb.pending(0), 0);
}

TEST(WriteBufferTest, CapacityOverflowDrainsTheFifo) {
  RecordingListener rec;
  WriteBuffer wb(&rec, /*nprocs=*/1, /*capacity=*/2);
  wb.on_event(make_event(0, 0, OpType::kWrite));
  wb.on_event(make_event(0, 1, OpType::kWrite));
  EXPECT_EQ(wb.pending(0), 2);
  wb.on_event(make_event(0, 2, OpType::kWrite));  // overflows: drain first
  EXPECT_EQ(rec.events.size(), 2u);
  EXPECT_EQ(wb.pending(0), 1);
}

TEST(WriteBufferTest, CrashDrainsThenPowersDown) {
  RecordingListener rec;
  WriteBuffer wb(&rec, /*nprocs=*/2, /*capacity=*/4);
  wb.on_event(make_event(0, 3, OpType::kWrite));
  wb.on_crash(0);
  // Drain-then-die: the buffered store became visible before the crash
  // reached the protocol.
  ASSERT_EQ(rec.events.size(), 1u);
  EXPECT_EQ(rec.events[0].op, OpType::kWrite);
  ASSERT_EQ(rec.crashes.size(), 1u);
  EXPECT_EQ(rec.crashes[0], 0);
  EXPECT_EQ(wb.pending(0), 0);
}

// Behind a live SharedMemory, a buffered fleet still ends every run with
// all invariants intact and conserves events: everything buffered is
// eventually drained, and the protocol sees exactly the applied ops minus
// coalesced stores and forwarded reads.
TEST(WriteBufferTest, FleetBehindBufferConservesEventsAndInvariants) {
  const int n = 4;
  World w(n, /*nvars=*/3);
  WriteBuffer wb(w.fleet.listener(), n, /*capacity=*/4);
  w.mem->set_listener(&wb);

  SplitMix64 rng(7);
  std::uint64_t applied = 0;
  for (int i = 0; i < 300; ++i) {
    const auto p = static_cast<ProcId>(rng.below(n));
    const VarId v = w.vars[rng.below(w.vars.size())];
    if (rng.chance(1, 2)) {
      w.mem->apply(p, MemOp::write(v, static_cast<Word>(rng.below(4))));
    } else {
      w.mem->apply(p, MemOp::read(v));
    }
    ++applied;
  }
  wb.flush();
  EXPECT_EQ(wb.drained_writes(), wb.buffered_writes());
  ASSERT_EQ(w.fleet.check_invariants(), std::nullopt);

  // Event conservation at the protocol boundary: the bus counter ticks
  // once per event it sees, all of which are RMRs here (write-through CC,
  // and reads that would be local hits were absorbed by the buffer or the
  // schedule's own locality).
  const std::uint64_t seen = w.fleet.bus().transfer_messages();
  EXPECT_LE(seen + wb.coalesced_writes() + wb.forwarded_reads(), applied);
  EXPECT_GT(seen, 0u);
}

}  // namespace
}  // namespace rmrsim
