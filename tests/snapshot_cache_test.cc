// SnapshotCache under tiny byte budgets: eviction order, post-eviction
// probes, and budgets too small to hold even one snapshot. The cache is the
// state-reconstruction engine behind SnapshotMode::kSnapshot, so "cache
// behaves badly when memory is scarce" would silently translate into
// "exploration slows down or — worse — diverges"; these tests pin the
// starved-cache contract directly and end-to-end.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"
#include "signaling/checker.h"
#include "signaling/dsm_registration.h"
#include "verify/dpor.h"
#include "verify/explorer.h"
#include "verify/snapshot_cache.h"

namespace rmrsim {
namespace {

ExploreBuilder signaling_builder(int n_waiters, int polls) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(n_waiters + 1);
    auto alg = std::make_shared<DsmRegistrationSignal>(
        *inst.mem, static_cast<ProcId>(n_waiters));
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreChecker polling_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h); v.has_value()) return v->what;
    return std::nullopt;
  };
}

/// One real snapshot, reused under many keys: these tests exercise the
/// cache's bookkeeping (bytes, LRU, lengths), which is content-agnostic.
std::shared_ptr<const WorldSnapshot> some_snapshot() {
  const ExploreInstance inst = signaling_builder(1, 1)();
  inst.sim->enable_fork_log();
  return take_snapshot(inst);
}

TEST(SnapshotCacheEviction, BatchEvictionDropsLeastRecentlyUsedFirst) {
  const auto snap = some_snapshot();
  const std::size_t sz = snap->approx_bytes();
  // Budget holds exactly 3 snapshots; eviction targets 3/4 of the budget,
  // i.e. 2 snapshots survive the first overflow.
  SnapshotCache cache({.stride = 1, .max_bytes = sz * 3});

  ASSERT_TRUE(cache.insert({0}, snap));        // tick 1
  ASSERT_TRUE(cache.insert({0, 1}, snap));     // tick 2
  ASSERT_TRUE(cache.insert({0, 1, 2}, snap));  // tick 3
  ASSERT_EQ(cache.size(), 3u);
  ASSERT_EQ(cache.evictions(), 0u);

  // Touch {0}: its LRU tick is now the newest, so {0, 1} is the coldest.
  std::size_t len = 0;
  ASSERT_NE(cache.best_prefix({0}, &len), nullptr);
  ASSERT_EQ(len, 1u);

  // The 4th insert overflows; the batch eviction must drop the two coldest
  // ({0, 1} then {0, 1, 2}) and keep the touched {0} plus the new entry —
  // deterministically, every run, despite the unordered backing map.
  ASSERT_TRUE(cache.insert({3}, snap));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_TRUE(cache.contains({0}));
  EXPECT_TRUE(cache.contains({3}));
  EXPECT_FALSE(cache.contains({0, 1}));
  EXPECT_FALSE(cache.contains({0, 1, 2}));
  EXPECT_LE(cache.bytes(), sz * 3 - (sz * 3) / 4 + sz)
      << "post-eviction occupancy honors the 3/4 target";
}

TEST(SnapshotCacheEviction, BestPrefixFallsBackAfterDeepEntryIsEvicted) {
  const auto snap = some_snapshot();
  const std::size_t sz = snap->approx_bytes();
  SnapshotCache cache({.stride = 1, .max_bytes = sz * 3});

  // A chain of ancestors of the probe target {0, 1, 2, 0}.
  ASSERT_TRUE(cache.insert({0, 1, 2, 0}, snap));  // deepest — tick 1 (coldest)
  ASSERT_TRUE(cache.insert({0}, snap));           // tick 2
  ASSERT_TRUE(cache.insert({7}, snap));           // tick 3 (unrelated)
  std::size_t len = 0;
  ASSERT_NE(cache.best_prefix({0, 1, 2, 0}, &len), nullptr);
  EXPECT_EQ(len, 4u) << "exact match wins while it lives";

  // Refresh {7} then {0}: the LRU order is now {0,1,2,0} < {7} < {0}, so
  // the batch eviction (which drops the two coldest here) takes the deep
  // entry and {7} while the short ancestor survives.
  ASSERT_NE(cache.best_prefix({7}, &len), nullptr);
  ASSERT_NE(cache.best_prefix({0}, &len), nullptr);

  // Overflow: the deep entry goes; the probe must *fall back* to the
  // surviving 1-long ancestor — shorter match, never a stale deep hit.
  ASSERT_TRUE(cache.insert({8}, snap));
  EXPECT_FALSE(cache.contains({0, 1, 2, 0}));
  const auto hit = cache.best_prefix({0, 1, 2, 0}, &len);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(len, 1u);
}

TEST(SnapshotCacheEviction, BudgetSmallerThanOneSnapshotRefusesInserts) {
  const auto snap = some_snapshot();
  SnapshotCache cache({.stride = 1, .max_bytes = 1});

  EXPECT_FALSE(cache.insert({0}, snap)) << "snapshot alone exceeds the budget";
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 0u) << "refusal is not an eviction";
  std::size_t len = 99;
  EXPECT_EQ(cache.best_prefix({0}, &len), nullptr);
  EXPECT_EQ(len, 0u);
}

TEST(SnapshotCacheEviction, StarvedCacheExplorationStillMatchesReplayMode) {
  // End to end: snapshot mode with a 1-byte budget degenerates into replay
  // mode (every insert refused, every probe a miss) — slower, but verdicts,
  // schedules, and node counts must not move. Workers 1 and 2, because the
  // parallel search gives each work item its own starved private cache.
  const auto build = signaling_builder(2, 1);
  const auto check = polling_checker();

  DporOptions ref_opt;
  ref_opt.max_depth = 14;
  ref_opt.snapshot_mode = SnapshotMode::kReplay;
  const ExploreResult ref = explore_dpor(build, check, ref_opt);
  ASSERT_TRUE(ref.exhausted);

  for (const int workers : {1, 2}) {
    DporOptions opt = ref_opt;
    opt.workers = workers;
    opt.snapshot_mode = SnapshotMode::kSnapshot;
    opt.snapshot_max_bytes = 1;
    const ExploreResult starved = explore_dpor(build, check, opt);
    EXPECT_EQ(starved.nodes_visited, ref.nodes_visited);
    EXPECT_EQ(starved.complete_schedules, ref.complete_schedules);
    EXPECT_EQ(starved.truncated_schedules, ref.truncated_schedules);
    EXPECT_EQ(starved.exhausted, ref.exhausted);
    EXPECT_EQ(starved.violation, ref.violation);
    EXPECT_EQ(starved.violating_schedule, ref.violating_schedule);
    EXPECT_EQ(starved.stats.snapshot_hits, 0u) << "nothing fit, nothing hit";
  }
}

TEST(SnapshotCacheEviction, TinyButUsableBudgetStaysCorrectUnderChurn) {
  // A budget of ~2 snapshots forces constant eviction churn through a real
  // exploration. Results must match replay mode exactly; the cache must
  // actually evict (proving the churn happened, not a silent fallback).
  const auto build = signaling_builder(2, 1);
  const auto check = polling_checker();

  DporOptions ref_opt;
  ref_opt.max_depth = 14;
  ref_opt.snapshot_mode = SnapshotMode::kReplay;
  const ExploreResult ref = explore_dpor(build, check, ref_opt);

  const ExploreInstance probe = build();
  probe.sim->enable_fork_log();
  const auto snap = take_snapshot(probe);
  DporOptions opt = ref_opt;
  opt.snapshot_mode = SnapshotMode::kSnapshot;
  opt.snapshot_stride = 2;
  opt.snapshot_max_bytes = snap->approx_bytes() * 2;
  const ExploreResult churned = explore_dpor(build, check, opt);
  EXPECT_EQ(churned.nodes_visited, ref.nodes_visited);
  EXPECT_EQ(churned.complete_schedules, ref.complete_schedules);
  EXPECT_EQ(churned.exhausted, ref.exhausted);
  EXPECT_EQ(churned.violation, ref.violation);
  EXPECT_EQ(churned.violating_schedule, ref.violating_schedule);
  EXPECT_GT(churned.stats.snapshot_evictions, 0u)
      << "the budget was supposed to be tight enough to churn";
}

}  // namespace
}  // namespace rmrsim
