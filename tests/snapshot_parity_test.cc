// Fork-vs-replay parity: the contract behind SnapshotMode::kSnapshot is
// that a world restored from a WorldSnapshot is behaviorally
// indistinguishable from one rebuilt by replaying its schedule from
// scratch. These tests enforce it end to end:
//
//   - a restored world matches the replay-built world step for step —
//     schedule, history, RMR ledger totals, and all future behavior;
//   - the explorer, the DPOR engine (workers 1 and 2), the crash-point
//     sweep, the crash x schedule product, and the shrinker produce
//     identical verdicts, schedules, and witnesses in both modes, in both
//     history modes;
//   - crash side effects survive the fork: a crashed process's cleared LL
//     reservation stays cleared in the clone;
//   - ExploreStats::replayed_steps counts simulator steps actually
//     executed, not macro-schedule entries (the historical undercount).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"
#include "mutex/recoverable_lock.h"
#include "sched/schedulers.h"
#include "signaling/algorithm.h"
#include "signaling/broken.h"
#include "signaling/checker.h"
#include "signaling/dsm_registration.h"
#include "verify/dpor.h"
#include "verify/explorer.h"
#include "verify/shrink.h"
#include "verify/snapshot_cache.h"

namespace rmrsim {
namespace {

template <typename Alg, typename... Args>
ExploreBuilder signaling_builder(int n_waiters, int polls, Args... args) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(n_waiters + 1);
    auto alg = std::make_shared<Alg>(*inst.mem, args...);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreChecker polling_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h); v.has_value()) return v->what;
    return std::nullopt;
  };
}

ExploreBuilder recoverable_lock_builder(int nprocs, int passages) {
  return [=]() {
    ExploreInstance inst;
    auto mem = make_dsm(nprocs);
    auto lock = std::make_shared<RecoverableSpinLock>(*mem);
    std::vector<VarId> done;
    for (int p = 0; p < nprocs; ++p) {
      done.push_back(mem->allocate_global(0, "done"));
    }
    std::vector<Program> programs;
    for (int p = 0; p < nprocs; ++p) {
      programs.emplace_back([lock, dv = done[p], passages](ProcCtx& ctx) {
        return recoverable_mutex_worker(ctx, lock.get(), dv, passages);
      });
    }
    inst.sim = std::make_unique<Simulation>(*mem, std::move(programs));
    inst.keepalive = lock;
    inst.mem = std::move(mem);
    return inst;
  };
}

ExploreChecker mutual_exclusion_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_mutual_exclusion(h); v.has_value()) {
      return v->what;
    }
    return std::nullopt;
  };
}

/// Every observable the parity contract covers, comparable across worlds.
void expect_worlds_identical(const ExploreInstance& a,
                             const ExploreInstance& b) {
  EXPECT_EQ(a.sim->schedule(), b.sim->schedule());
  EXPECT_EQ(a.sim->now(), b.sim->now());
  EXPECT_EQ(a.sim->history().size(), b.sim->history().size());
  EXPECT_EQ(a.sim->history().total_rmrs(), b.sim->history().total_rmrs());
  EXPECT_EQ(a.mem->ledger().total_ops(), b.mem->ledger().total_ops());
  EXPECT_EQ(a.mem->ledger().total_rmrs(), b.mem->ledger().total_rmrs());
  for (ProcId p = 0; p < static_cast<ProcId>(a.sim->nprocs()); ++p) {
    EXPECT_EQ(a.sim->history().rmrs(p), b.sim->history().rmrs(p)) << "p=" << p;
    EXPECT_EQ(a.mem->ledger().rmrs(p), b.mem->ledger().rmrs(p)) << "p=" << p;
    EXPECT_EQ(a.sim->terminated(p), b.sim->terminated(p)) << "p=" << p;
  }
}

TEST(SnapshotParity, RestoredWorldMatchesReplayBuiltWorld) {
  // Materialize the same prefix twice through one cache: the first call
  // builds from scratch (miss) and captures stride-aligned snapshots; the
  // second restores the deepest one and replays only the suffix. The two
  // worlds must agree on everything — including their entire future.
  const auto build = signaling_builder<DsmRegistrationSignal>(2, 1, ProcId{2});
  const std::vector<ProcId> prefix{0, 1, 2, 0, 1, 2, 0, 1};

  SnapshotCache cache({.stride = 3, .max_bytes = std::size_t{8} << 20});
  ExploreStats cold, warm;
  ExploreInstance a = materialize_schedule(build, prefix, ReplayUnit::kMacro,
                                           /*counters_only=*/false, &cache,
                                           &cold);
  ExploreInstance b = materialize_schedule(build, prefix, ReplayUnit::kMacro,
                                           /*counters_only=*/false, &cache,
                                           &warm);
  EXPECT_EQ(cold.snapshot_hits, 0u);
  EXPECT_EQ(cold.snapshot_misses, 1u);
  EXPECT_GT(cold.snapshots_taken, 0u);
  EXPECT_EQ(warm.snapshot_hits, 1u);
  EXPECT_LT(warm.replayed_steps, cold.replayed_steps)
      << "the restored rebuild must replay only the suffix";
  expect_worlds_identical(a, b);

  // Same future: drive both restored-vs-rebuilt worlds to completion.
  fair_drive(*a.sim, 100'000);
  fair_drive(*b.sim, 100'000);
  expect_worlds_identical(a, b);
  EXPECT_TRUE(a.sim->all_terminated());
}

void expect_results_identical(const ExploreResult& replay,
                              const ExploreResult& snapshot) {
  EXPECT_EQ(replay.nodes_visited, snapshot.nodes_visited);
  EXPECT_EQ(replay.complete_schedules, snapshot.complete_schedules);
  EXPECT_EQ(replay.truncated_schedules, snapshot.truncated_schedules);
  EXPECT_EQ(replay.exhausted, snapshot.exhausted);
  EXPECT_EQ(replay.violation, snapshot.violation);
  EXPECT_EQ(replay.violating_schedule, snapshot.violating_schedule);
}

TEST(SnapshotParity, ExplorerVerdictsMatchAcrossModes) {
  // Passing and violating configurations, full and counters-only history.
  // (check_polling_spec reads records, so counters-only runs only on a
  // record-free checker — use a never-fires one for that leg.)
  const auto correct = signaling_builder<DsmRegistrationSignal>(1, 2, ProcId{1});
  const auto broken = signaling_builder<LateFlagSignal>(2, 2, ProcId{2});
  const auto check = polling_checker();

  for (const auto* build : {&correct, &broken}) {
    ExploreOptions opt;
    opt.max_depth = 12;
    opt.snapshot_mode = SnapshotMode::kReplay;
    const ExploreResult replay = explore_all_schedules(*build, check, opt);
    opt.snapshot_mode = SnapshotMode::kSnapshot;
    opt.snapshot_stride = 2;
    const ExploreResult snap = explore_all_schedules(*build, check, opt);
    expect_results_identical(replay, snap);
    EXPECT_GT(snap.stats.snapshot_hits, 0u);
    EXPECT_GT(snap.stats.snapshot_peak_bytes, 0u);
  }
  // The violating leg really does violate (and both modes agree it does).
  ExploreOptions vopt;
  vopt.max_depth = 12;
  vopt.snapshot_mode = SnapshotMode::kReplay;
  ASSERT_TRUE(explore_all_schedules(broken, check, vopt).violation.has_value());
}

TEST(SnapshotParity, ExplorerCountersOnlyHistoryMatchesAcrossModes) {
  const auto build = signaling_builder<DsmRegistrationSignal>(1, 1, ProcId{1});
  // Counters-only worlds refuse record reads; a ledger-grade checker.
  const ExploreChecker check = [](const History& h) -> std::optional<std::string> {
    if (h.total_rmrs() > 1'000'000) return "absurd RMR count";
    return std::nullopt;
  };
  ExploreOptions opt;
  opt.max_depth = 12;
  opt.counters_only_history = true;
  opt.snapshot_mode = SnapshotMode::kReplay;
  const ExploreResult replay = explore_all_schedules(build, check, opt);
  opt.snapshot_mode = SnapshotMode::kSnapshot;
  opt.snapshot_stride = 3;
  const ExploreResult snap = explore_all_schedules(build, check, opt);
  expect_results_identical(replay, snap);
  EXPECT_GT(replay.complete_schedules, 0u);
}

TEST(SnapshotParity, DporVerdictsMatchAcrossModesAndWorkers) {
  const auto correct = signaling_builder<DsmRegistrationSignal>(2, 1, ProcId{2});
  const auto broken = signaling_builder<LateFlagSignal>(2, 2, ProcId{2});
  const auto check = polling_checker();

  for (const auto* build : {&correct, &broken}) {
    DporOptions opt;
    opt.max_depth = 20;
    opt.snapshot_mode = SnapshotMode::kReplay;
    const ExploreResult replay = explore_dpor(*build, check, opt);
    ASSERT_TRUE(replay.exhausted);

    for (const int workers : {1, 2}) {
      DporOptions sopt = opt;
      sopt.workers = workers;
      sopt.snapshot_mode = SnapshotMode::kSnapshot;
      sopt.snapshot_stride = 3;
      const ExploreResult snap = explore_dpor(*build, check, sopt);
      expect_results_identical(replay, snap);
      EXPECT_EQ(replay.stats.sleep_set_prunes, snap.stats.sleep_set_prunes);
      EXPECT_EQ(replay.stats.backtrack_points, snap.stats.backtrack_points);
    }
  }
}

TEST(SnapshotParity, CrashSweepMatchesAcrossModes) {
  const auto build = recoverable_lock_builder(3, 2);
  const auto check = mutual_exclusion_checker();

  CrashSweepOptions opt;
  opt.snapshot_mode = SnapshotMode::kReplay;
  const CrashSweepResult replay = sweep_crash_points(build, check, 0, opt);
  opt.snapshot_mode = SnapshotMode::kSnapshot;
  opt.snapshot_stride = 8;
  const CrashSweepResult snap = sweep_crash_points(build, check, 0, opt);

  EXPECT_EQ(replay.crash_points, snap.crash_points);
  EXPECT_EQ(replay.completed, snap.completed);
  EXPECT_EQ(replay.stuck, snap.stuck);
  EXPECT_EQ(replay.wedged, snap.wedged);
  EXPECT_EQ(replay.violation, snap.violation);
  EXPECT_EQ(replay.violating_crash_point, snap.violating_crash_point);
  EXPECT_GT(snap.stats.snapshot_hits, 0u)
      << "successive crash points share prefixes; the cache must serve them";
  EXPECT_LT(snap.stats.replayed_steps, replay.stats.replayed_steps);
}

TEST(SnapshotParity, CrashProductMatchesAcrossModes) {
  const auto build = recoverable_lock_builder(2, 2);
  const auto check = mutual_exclusion_checker();

  CrashProductOptions opt;
  opt.explore.max_depth = 40;
  opt.max_schedules = 8;
  opt.explore.snapshot_mode = SnapshotMode::kReplay;
  const CrashProductResult replay = sweep_crash_product(build, check, 0, opt);
  opt.explore.snapshot_mode = SnapshotMode::kSnapshot;
  opt.explore.snapshot_stride = 4;
  const CrashProductResult snap = sweep_crash_product(build, check, 0, opt);

  EXPECT_EQ(replay.schedules_swept, snap.schedules_swept);
  EXPECT_EQ(replay.schedule_violation, snap.schedule_violation);
  EXPECT_EQ(replay.violating_schedule, snap.violating_schedule);
  EXPECT_EQ(replay.sweep.crash_points, snap.sweep.crash_points);
  EXPECT_EQ(replay.sweep.completed, snap.sweep.completed);
  EXPECT_EQ(replay.sweep.stuck, snap.sweep.stuck);
  EXPECT_EQ(replay.sweep.wedged, snap.sweep.wedged);
  EXPECT_EQ(replay.sweep.violation, snap.sweep.violation);
  EXPECT_EQ(replay.sweep.violating_crash_point,
            snap.sweep.violating_crash_point);
  EXPECT_GT(replay.schedules_swept, 0);
}

TEST(SnapshotParity, ShrinkWitnessMatchesAcrossModes) {
  const auto build = signaling_builder<BrokenLocalSignal>(1, 2);
  const auto check = polling_checker();
  const ExploreResult found =
      explore_dpor(build, check, {.max_depth = 20, .max_nodes = 200'000});
  ASSERT_TRUE(found.violation.has_value());

  ShrinkOptions opt;
  opt.snapshot_mode = SnapshotMode::kReplay;
  const auto replay =
      shrink_counterexample(build, check, found.violating_schedule, opt);
  opt.snapshot_mode = SnapshotMode::kSnapshot;
  opt.snapshot_stride = 1;
  const auto snap =
      shrink_counterexample(build, check, found.violating_schedule, opt);

  ASSERT_TRUE(replay.has_value());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(replay->schedule, snap->schedule);
  EXPECT_EQ(replay->message, snap->message);
  EXPECT_EQ(replay->candidates_tried, snap->candidates_tried);
  EXPECT_EQ(replay->candidates_reproduced, snap->candidates_reproduced);
  EXPECT_EQ(replay->message, *found.violation);
}

ProcTask ll_then_reads(ProcCtx& ctx, VarId x) {
  co_await ctx.ll(x);
  co_await ctx.read(x);
  co_await ctx.read(x);
}

ProcTask read_twice(ProcCtx& ctx, VarId x) {
  co_await ctx.read(x);
  co_await ctx.read(x);
}

TEST(SnapshotParity, CrashThenForkKeepsReservationsCleared) {
  // A crash destroys the victim's link register (its LL reservation). The
  // snapshot must capture the post-crash truth — the clone may not
  // resurrect the reservation by replaying the victim's pre-crash LL.
  auto mem = make_dsm(2);
  const VarId x = mem->allocate_global(0, "x");
  std::vector<Program> programs;
  programs.emplace_back([x](ProcCtx& ctx) { return ll_then_reads(ctx, x); });
  programs.emplace_back([x](ProcCtx& ctx) { return read_twice(ctx, x); });
  Simulation sim(*mem, std::move(programs));
  sim.enable_fork_log();

  sim.step(0);  // applies the LL
  ASSERT_TRUE(mem->store().has_reservation(0, x));

  // A fork of the live world preserves the reservation...
  Simulation::ForkedWorld live = sim.fork();
  EXPECT_TRUE(live.mem->store().has_reservation(0, x));

  // ...and a fork taken after the crash preserves the *cleared* state.
  sim.crash(0);
  ASSERT_FALSE(mem->store().has_reservation(0, x));
  Simulation::ForkedWorld crashed = sim.fork();
  EXPECT_FALSE(crashed.mem->store().has_reservation(0, x));
  EXPECT_TRUE(crashed.sim->crashed(0));

  // Recovery in the clone restarts the program; the reservation only comes
  // back once the re-executed LL is applied — never for free.
  crashed.sim->recover(0);
  EXPECT_FALSE(crashed.mem->store().has_reservation(0, x));
  crashed.sim->step(0);
  EXPECT_TRUE(crashed.mem->store().has_reservation(0, x));

  // The clone's activity never leaks back into the original world.
  EXPECT_FALSE(mem->store().has_reservation(0, x));
}

TEST(SnapshotParity, ReplayedStepsCountSimulatorStepsNotScheduleEntries) {
  // Regression pin: replayed_steps used to count macro-schedule ENTRIES.
  // Each macro step also flushes the process's local events, so the honest
  // count — the simulator's own schedule growth — is strictly larger.
  const auto build = signaling_builder<DsmRegistrationSignal>(2, 1, ProcId{2});

  // Record a complete macro schedule and the real step count it costs.
  ExploreInstance probe = build();
  std::vector<ProcId> macro;
  while (!probe.sim->all_terminated()) {
    for (ProcId p = 0; p < static_cast<ProcId>(probe.sim->nprocs()); ++p) {
      if (probe.sim->runnable(p)) {
        macro.push_back(p);
        probe.sim->macro_step(p);
        break;
      }
    }
  }
  const std::uint64_t real_steps = probe.sim->schedule().size();
  ASSERT_GT(real_steps, macro.size())
      << "macro entries must undercount (each flushes events too)";

  ExploreStats stats;
  const ExploreInstance rebuilt =
      materialize_schedule(build, macro, ReplayUnit::kMacro,
                           /*counters_only=*/false, /*cache=*/nullptr, &stats);
  EXPECT_EQ(stats.replayed_steps, real_steps);
  EXPECT_EQ(rebuilt.sim->schedule().size(), real_steps);
  EXPECT_EQ(stats.snapshot_delta_steps, 0u) << "nothing was restored";
}

}  // namespace
}  // namespace rmrsim
