// Tests for the trace subsystem (per-call cost slicing, exporters) and the
// per-call cost *shapes* of the Section 7 algorithms — the "expensive first
// poll, free spins afterwards" fingerprint.
#include <gtest/gtest.h>

#include <memory>

#include "memory/shared_memory.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/llsc_registration.h"
#include "signaling/checker.h"
#include "signaling/workload.h"
#include "trace/call_stats.h"
#include "trace/export.h"

namespace rmrsim {
namespace {

SignalingRun reg_run(int n_waiters) {
  SignalingWorkloadOptions opt;
  opt.n_waiters = n_waiters;
  opt.signaler_idle_polls = 32;
  return run_signaling_workload(
      make_dsm(n_waiters + 1),
      [n_waiters](SharedMemory& m) {
        return std::make_unique<DsmRegistrationSignal>(
            m, static_cast<ProcId>(n_waiters));
      },
      opt);
}

TEST(CallStats, SlicesCallsAndAttributesRmrs) {
  auto run = reg_run(4);
  const auto costs = per_call_costs(run.sim->history());
  // Every waiter made at least 2 polls (the signaler idled 32 polls' worth).
  for (ProcId p = 0; p < 4; ++p) {
    const auto polls = calls_of(costs, p, calls::kPoll);
    ASSERT_GE(polls.size(), 2u) << "p" << p;
    EXPECT_TRUE(polls.front().completed);
    EXPECT_EQ(polls.front().call_index, 0);
    // First poll: register (1 RMR) + S read (1 RMR) + local bookkeeping.
    EXPECT_EQ(polls.front().rmrs, 2u) << "p" << p;
    EXPECT_GE(polls.front().mem_steps, 3u);
    // All steady-state polls are free (local V spin).
    for (std::size_t i = 1; i < polls.size(); ++i) {
      EXPECT_EQ(polls[i].rmrs, 0u) << "p" << p << " call " << i;
    }
    // The last poll returned true.
    EXPECT_EQ(polls.back().returned, 1);
  }
  // Signaler's single Signal(): one RMR per waiter + the S write.
  const auto signals = calls_of(costs, 4, calls::kSignal);
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals.front().rmrs, 5u);
}

TEST(CallStats, MaxFromIndexIsolatesSteadyState) {
  auto run = reg_run(6);
  const auto costs = per_call_costs(run.sim->history());
  EXPECT_GT(max_rmrs_from_index(costs, calls::kPoll, 0), 0u);
  EXPECT_EQ(max_rmrs_from_index(costs, calls::kPoll, 1), 0u);
}

TEST(CallStats, QueueAlgorithmFingerprint) {
  SignalingWorkloadOptions opt;
  opt.n_waiters = 5;
  opt.signaler_idle_polls = 16;
  auto run = run_signaling_workload(
      make_dsm(6),
      [](SharedMemory& m) { return std::make_unique<DsmQueueSignal>(m); },
      opt);
  const auto costs = per_call_costs(run.sim->history());
  for (ProcId p = 0; p < 5; ++p) {
    const auto polls = calls_of(costs, p, calls::kPoll);
    ASSERT_FALSE(polls.empty());
    EXPECT_LE(polls.front().rmrs, 3u);  // FAI + announce + S read
  }
  EXPECT_EQ(max_rmrs_from_index(costs, calls::kPoll, 1), 0u);
}

TEST(LlscRegistration, CorrectAndO1PerWaiter) {
  for (const std::uint64_t seed : {21u, 2121u, 212121u}) {
    SignalingWorkloadOptions opt;
    opt.n_waiters = 6;
    opt.scheduler_seed = seed;
    auto run = run_signaling_workload(
        make_dsm(7),
        [](SharedMemory& m) {
          return std::make_unique<LlscRegistrationSignal>(m);
        },
        opt);
    const auto v = check_polling_spec(run.sim->history());
    EXPECT_FALSE(v.has_value()) << v->what;
    const auto costs = per_call_costs(run.sim->history());
    EXPECT_EQ(max_rmrs_from_index(costs, calls::kPoll, 1), 0u);
  }
}

TEST(Export, CsvHasOneRowPerRecordPlusHeader) {
  auto run = reg_run(2);
  const std::string csv = history_to_csv(run.sim->history());
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, run.sim->history().size() + 1);
  EXPECT_NE(csv.find("READ"), std::string::npos);
  EXPECT_NE(csv.find("call_begin"), std::string::npos);
}

TEST(Export, JsonLinesParseableShape) {
  auto run = reg_run(2);
  const std::string json = history_to_json_lines(run.sim->history());
  // Cheap structural checks: every line is one object.
  std::size_t objects = 0;
  std::size_t pos = 0;
  while ((pos = json.find("{\"index\":", pos)) != std::string::npos) {
    ++objects;
    ++pos;
  }
  EXPECT_EQ(objects, run.sim->history().size());
  EXPECT_NE(json.find("\"rmr\":true"), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"call_end\""), std::string::npos);
}

// ---- pathological call shapes (synthetic histories) --------------------

StepRecord event_rec(ProcId p, EventKind e, Word code, Word value = 0) {
  StepRecord r;
  r.proc = p;
  r.kind = StepRecord::Kind::kEvent;
  r.event = e;
  r.code = code;
  r.value = value;
  return r;
}

StepRecord mem_rec(ProcId p, bool rmr) {
  StepRecord r;
  r.proc = p;
  r.kind = StepRecord::Kind::kMemOp;
  r.op = MemOp::read(0);
  r.outcome.rmr = rmr;
  return r;
}

TEST(CallStats, NestedCallsAttributeToInnermostExclusively) {
  History h;
  h.append(event_rec(0, EventKind::kCallBegin, calls::kAcquire));
  h.append(mem_rec(0, true));  // outer, before the nested call
  h.append(event_rec(0, EventKind::kCallBegin, calls::kRecover));
  h.append(mem_rec(0, true));   // inner
  h.append(mem_rec(0, false));  // inner
  h.append(event_rec(0, EventKind::kCallEnd, calls::kRecover, 7));
  h.append(mem_rec(0, true));  // outer again, after the nested call
  h.append(event_rec(0, EventKind::kCallEnd, calls::kAcquire, 1));
  const auto costs = per_call_costs(h);
  ASSERT_EQ(costs.size(), 2u);
  const CallCost& outer = costs[0];
  const CallCost& inner = costs[1];
  ASSERT_EQ(outer.call_code, calls::kAcquire);
  ASSERT_EQ(inner.call_code, calls::kRecover);
  // Exclusive attribution: the inner call's steps never double-count
  // into its parent.
  EXPECT_EQ(outer.mem_steps, 2u);
  EXPECT_EQ(outer.rmrs, 2u);
  EXPECT_TRUE(outer.completed);
  EXPECT_EQ(outer.returned, 1);
  EXPECT_EQ(inner.mem_steps, 2u);
  EXPECT_EQ(inner.rmrs, 1u);
  EXPECT_TRUE(inner.completed);
  EXPECT_EQ(inner.returned, 7);
}

TEST(CallStats, NeverEndingCallKeepsAccruedCosts) {
  History h;
  h.append(event_rec(0, EventKind::kCallBegin, calls::kPoll));
  h.append(mem_rec(0, true));
  h.append(mem_rec(0, true));
  // History ends mid-call (e.g. the run hit its step budget).
  const auto costs = per_call_costs(h);
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_FALSE(costs[0].completed);
  EXPECT_EQ(costs[0].mem_steps, 2u);
  EXPECT_EQ(costs[0].rmrs, 2u);
}

TEST(CallStats, StepsOutsideAnyCallSpanAreIgnored) {
  History h;
  h.append(mem_rec(0, true));  // before any call
  h.append(event_rec(0, EventKind::kCallBegin, calls::kPoll));
  h.append(mem_rec(0, true));
  h.append(event_rec(0, EventKind::kCallEnd, calls::kPoll, 0));
  h.append(mem_rec(0, true));  // between calls
  // Another process's uncontained step must not leak into p0's call.
  h.append(mem_rec(1, true));
  const auto costs = per_call_costs(h);
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_EQ(costs[0].proc, 0);
  EXPECT_EQ(costs[0].mem_steps, 1u);
  EXPECT_EQ(costs[0].rmrs, 1u);
}

TEST(CallStats, EndClosesInnermostMatchingCodeAndAbandonsNestedAbove) {
  History h;
  h.append(event_rec(0, EventKind::kCallBegin, calls::kAcquire));
  h.append(event_rec(0, EventKind::kCallBegin, calls::kPoll));
  h.append(mem_rec(0, true));  // inside the nested poll
  // The acquire ends while the nested poll is still open (a crash
  // truncated the poll's end): the poll is closed unfinished.
  h.append(event_rec(0, EventKind::kCallEnd, calls::kAcquire, 1));
  h.append(mem_rec(0, true));  // after both spans — unattributed
  const auto costs = per_call_costs(h);
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_TRUE(costs[0].completed);   // acquire
  EXPECT_FALSE(costs[1].completed);  // poll, closed by the outer end
  EXPECT_EQ(costs[1].rmrs, 1u);
  EXPECT_EQ(costs[0].rmrs, 0u);
  // An end with no matching begin is ignored outright.
  h.append(event_rec(0, EventKind::kCallEnd, calls::kRelease, 0));
  EXPECT_EQ(per_call_costs(h).size(), 2u);
}

TEST(CallStats, CyclesOverlayAttributesPerMemoryStep) {
  // The cycle log indexes memory steps globally (SharedMemory publishes one
  // CoherenceEvent per applied op), so entry k prices the k-th kMemOp record
  // whether or not that step falls inside a call span; only span-contained
  // steps contribute to a call's total, innermost-exclusively.
  History h;
  h.append(mem_rec(0, true));  // step 0: before any call
  h.append(event_rec(0, EventKind::kCallBegin, calls::kAcquire));
  h.append(mem_rec(0, true));  // step 1: outer
  h.append(event_rec(0, EventKind::kCallBegin, calls::kPoll));
  h.append(mem_rec(0, false));  // step 2: inner
  h.append(event_rec(0, EventKind::kCallEnd, calls::kPoll, 0));
  h.append(mem_rec(0, true));  // step 3: outer again
  h.append(event_rec(0, EventKind::kCallEnd, calls::kAcquire, 1));
  h.append(mem_rec(0, true));  // step 4: after every call

  const std::vector<std::uint64_t> cycles = {100, 12, 0, 2, 100};
  const auto costs = per_call_costs(h, cycles);
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_EQ(costs[0].call_code, calls::kAcquire);
  EXPECT_EQ(costs[0].cycles, 12u + 2u);  // steps 1 and 3; not the nested one
  EXPECT_EQ(costs[1].call_code, calls::kPoll);
  EXPECT_EQ(costs[1].cycles, 0u);
  // The log-free overload reports zero cycles everywhere.
  EXPECT_EQ(per_call_costs(h)[0].cycles, 0u);
}

TEST(CallStats, CyclesOverlayToleratesShortLog) {
  // A log shorter than the step count (listener attached for only part of
  // the run) prices the uncovered steps at zero instead of reading past
  // the end.
  History h;
  h.append(event_rec(0, EventKind::kCallBegin, calls::kPoll));
  h.append(mem_rec(0, true));
  h.append(mem_rec(0, true));
  h.append(event_rec(0, EventKind::kCallEnd, calls::kPoll, 0));
  const std::vector<std::uint64_t> cycles = {7};
  const auto costs = per_call_costs(h, cycles);
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_EQ(costs[0].cycles, 7u);
}

// ---- JSON escaping ------------------------------------------------------

/// Minimal JSON string unescaper for round-trip checks (handles exactly the
/// forms json_escape emits: \" \\ \b \f \n \r \t and \u00XX).
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        const int hi = std::stoi(s.substr(i + 1, 4), nullptr, 16);
        out += static_cast<char>(hi);
        i += 4;
        break;
      }
      default: ADD_FAILURE() << "unknown escape \\" << s[i];
    }
  }
  return out;
}

TEST(Export, JsonEscapeRoundTripsControlCharacters) {
  const std::string nasty =
      "quote\" backslash\\ newline\n tab\t cr\r bell\x07 nul-adjacent\x1f ok";
  const std::string escaped = json_escape(nasty);
  // The escaped form must contain no raw control characters and no
  // unescaped quotes (a backslash-prefixed quote is fine).
  char prev = '\0';
  for (const char c : escaped) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    if (c == '"') {
      EXPECT_EQ(prev, '\\');
    }
    prev = c;
  }
  EXPECT_EQ(json_unescape(escaped), nasty);
}

TEST(Export, JsonLinesEscapeMarkPayloads) {
  // A mark whose rendered text would break naive JSON output.
  History h;
  StepRecord r = event_rec(0, EventKind::kMark, 0);
  h.append(r);
  const std::string json = history_to_json_lines(h);
  // Every line must stay one well-formed object: balanced quotes, no raw
  // control characters.
  for (const char c : json) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  std::size_t quotes = 0;
  for (const char c : json) {
    if (c == '"') ++quotes;
  }
  EXPECT_EQ(quotes % 2, 0u);
}

TEST(Export, TimelineHasOneLanePerParticipant) {
  auto run = reg_run(3);
  const std::string lanes = history_timeline(run.sim->history(), 40);
  EXPECT_NE(lanes.find("p0 "), std::string::npos);
  EXPECT_NE(lanes.find("p3 "), std::string::npos);  // the signaler
  EXPECT_NE(lanes.find("R!"), std::string::npos);   // some RMR read exists
  EXPECT_NE(lanes.find("legend"), std::string::npos);
}

}  // namespace
}  // namespace rmrsim
