// Tests for the trace subsystem (per-call cost slicing, exporters) and the
// per-call cost *shapes* of the Section 7 algorithms — the "expensive first
// poll, free spins afterwards" fingerprint.
#include <gtest/gtest.h>

#include <memory>

#include "memory/shared_memory.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/llsc_registration.h"
#include "signaling/checker.h"
#include "signaling/workload.h"
#include "trace/call_stats.h"
#include "trace/export.h"

namespace rmrsim {
namespace {

SignalingRun reg_run(int n_waiters) {
  SignalingWorkloadOptions opt;
  opt.n_waiters = n_waiters;
  opt.signaler_idle_polls = 32;
  return run_signaling_workload(
      make_dsm(n_waiters + 1),
      [n_waiters](SharedMemory& m) {
        return std::make_unique<DsmRegistrationSignal>(
            m, static_cast<ProcId>(n_waiters));
      },
      opt);
}

TEST(CallStats, SlicesCallsAndAttributesRmrs) {
  auto run = reg_run(4);
  const auto costs = per_call_costs(run.sim->history());
  // Every waiter made at least 2 polls (the signaler idled 32 polls' worth).
  for (ProcId p = 0; p < 4; ++p) {
    const auto polls = calls_of(costs, p, calls::kPoll);
    ASSERT_GE(polls.size(), 2u) << "p" << p;
    EXPECT_TRUE(polls.front().completed);
    EXPECT_EQ(polls.front().call_index, 0);
    // First poll: register (1 RMR) + S read (1 RMR) + local bookkeeping.
    EXPECT_EQ(polls.front().rmrs, 2u) << "p" << p;
    EXPECT_GE(polls.front().mem_steps, 3u);
    // All steady-state polls are free (local V spin).
    for (std::size_t i = 1; i < polls.size(); ++i) {
      EXPECT_EQ(polls[i].rmrs, 0u) << "p" << p << " call " << i;
    }
    // The last poll returned true.
    EXPECT_EQ(polls.back().returned, 1);
  }
  // Signaler's single Signal(): one RMR per waiter + the S write.
  const auto signals = calls_of(costs, 4, calls::kSignal);
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals.front().rmrs, 5u);
}

TEST(CallStats, MaxFromIndexIsolatesSteadyState) {
  auto run = reg_run(6);
  const auto costs = per_call_costs(run.sim->history());
  EXPECT_GT(max_rmrs_from_index(costs, calls::kPoll, 0), 0u);
  EXPECT_EQ(max_rmrs_from_index(costs, calls::kPoll, 1), 0u);
}

TEST(CallStats, QueueAlgorithmFingerprint) {
  SignalingWorkloadOptions opt;
  opt.n_waiters = 5;
  opt.signaler_idle_polls = 16;
  auto run = run_signaling_workload(
      make_dsm(6),
      [](SharedMemory& m) { return std::make_unique<DsmQueueSignal>(m); },
      opt);
  const auto costs = per_call_costs(run.sim->history());
  for (ProcId p = 0; p < 5; ++p) {
    const auto polls = calls_of(costs, p, calls::kPoll);
    ASSERT_FALSE(polls.empty());
    EXPECT_LE(polls.front().rmrs, 3u);  // FAI + announce + S read
  }
  EXPECT_EQ(max_rmrs_from_index(costs, calls::kPoll, 1), 0u);
}

TEST(LlscRegistration, CorrectAndO1PerWaiter) {
  for (const std::uint64_t seed : {21u, 2121u, 212121u}) {
    SignalingWorkloadOptions opt;
    opt.n_waiters = 6;
    opt.scheduler_seed = seed;
    auto run = run_signaling_workload(
        make_dsm(7),
        [](SharedMemory& m) {
          return std::make_unique<LlscRegistrationSignal>(m);
        },
        opt);
    const auto v = check_polling_spec(run.sim->history());
    EXPECT_FALSE(v.has_value()) << v->what;
    const auto costs = per_call_costs(run.sim->history());
    EXPECT_EQ(max_rmrs_from_index(costs, calls::kPoll, 1), 0u);
  }
}

TEST(Export, CsvHasOneRowPerRecordPlusHeader) {
  auto run = reg_run(2);
  const std::string csv = history_to_csv(run.sim->history());
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, run.sim->history().size() + 1);
  EXPECT_NE(csv.find("READ"), std::string::npos);
  EXPECT_NE(csv.find("call_begin"), std::string::npos);
}

TEST(Export, JsonLinesParseableShape) {
  auto run = reg_run(2);
  const std::string json = history_to_json_lines(run.sim->history());
  // Cheap structural checks: every line is one object.
  std::size_t objects = 0;
  std::size_t pos = 0;
  while ((pos = json.find("{\"index\":", pos)) != std::string::npos) {
    ++objects;
    ++pos;
  }
  EXPECT_EQ(objects, run.sim->history().size());
  EXPECT_NE(json.find("\"rmr\":true"), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"call_end\""), std::string::npos);
}

TEST(Export, TimelineHasOneLanePerParticipant) {
  auto run = reg_run(3);
  const std::string lanes = history_timeline(run.sim->history(), 40);
  EXPECT_NE(lanes.find("p0 "), std::string::npos);
  EXPECT_NE(lanes.find("p3 "), std::string::npos);  // the signaler
  EXPECT_NE(lanes.find("R!"), std::string::npos);   // some RMR read exists
  EXPECT_NE(lanes.find("legend"), std::string::npos);
}

}  // namespace
}  // namespace rmrsim
