// Unit tests for the memory substrate: primitive semantics, DSM/CC pricing,
// cache-state transitions, ledger accounting, and reset-for-replay.
#include <gtest/gtest.h>

#include "memory/cc_model.h"
#include "memory/dsm_model.h"
#include "memory/shared_memory.h"

namespace rmrsim {
namespace {

TEST(MemoryStore, ReadWriteBasics) {
  MemoryStore store(4);
  const VarId v = store.allocate(7, kNoProc, "v");
  EXPECT_EQ(store.value(v), 7);
  EXPECT_EQ(store.last_writer(v), kNoProc);

  auto r = store.apply(1, MemOp::write(v, 42));
  EXPECT_TRUE(r.wrote);
  EXPECT_EQ(store.value(v), 42);
  EXPECT_EQ(store.last_writer(v), 1);

  r = store.apply(2, MemOp::read(v));
  EXPECT_FALSE(r.wrote);
  EXPECT_EQ(r.result, 42);
  EXPECT_EQ(r.prev_writer, 1);
}

TEST(MemoryStore, CasSemantics) {
  MemoryStore store(2);
  const VarId v = store.allocate(5, kNoProc);
  // Failing CAS: returns current value, does not write.
  auto r = store.apply(0, MemOp::cas(v, 9, 1));
  EXPECT_EQ(r.result, 5);
  EXPECT_FALSE(r.wrote);
  EXPECT_EQ(store.value(v), 5);
  // Succeeding CAS.
  r = store.apply(0, MemOp::cas(v, 5, 1));
  EXPECT_EQ(r.result, 5);
  EXPECT_TRUE(r.wrote);
  EXPECT_EQ(store.value(v), 1);
}

TEST(MemoryStore, LlScReservations) {
  MemoryStore store(3);
  const VarId v = store.allocate(0, kNoProc);
  // SC without LL fails.
  auto r = store.apply(0, MemOp::sc(v, 1));
  EXPECT_EQ(r.result, 0);
  EXPECT_FALSE(r.wrote);
  // LL then SC succeeds.
  store.apply(0, MemOp::ll(v));
  r = store.apply(0, MemOp::sc(v, 1));
  EXPECT_EQ(r.result, 1);
  EXPECT_EQ(store.value(v), 1);
  // A successful SC consumes every reservation, including the writer's own.
  r = store.apply(0, MemOp::sc(v, 2));
  EXPECT_EQ(r.result, 0);
  // An intervening write by another process invalidates a reservation.
  store.apply(1, MemOp::ll(v));
  store.apply(2, MemOp::write(v, 9));
  r = store.apply(1, MemOp::sc(v, 5));
  EXPECT_EQ(r.result, 0);
  EXPECT_EQ(store.value(v), 9);
}

TEST(MemoryStore, FaaFasTas) {
  MemoryStore store(2);
  const VarId v = store.allocate(10, kNoProc);
  EXPECT_EQ(store.apply(0, MemOp::faa(v, 5)).result, 10);
  EXPECT_EQ(store.value(v), 15);
  EXPECT_EQ(store.apply(1, MemOp::fas(v, -3)).result, 15);
  EXPECT_EQ(store.value(v), -3);
  const VarId t = store.allocate(0, kNoProc);
  EXPECT_EQ(store.apply(0, MemOp::tas(t)).result, 0);
  EXPECT_EQ(store.apply(1, MemOp::tas(t)).result, 1);
  EXPECT_EQ(store.value(t), 1);
}

TEST(MemoryStore, DistinctWritersAndReset) {
  MemoryStore store(3);
  const VarId v = store.allocate(1, 2, "x");
  store.apply(0, MemOp::write(v, 2));
  store.apply(1, MemOp::write(v, 3));
  store.apply(0, MemOp::write(v, 4));
  EXPECT_EQ(store.distinct_writers(v), 2);
  EXPECT_EQ(store.home(v), 2);
  store.reset();
  EXPECT_EQ(store.value(v), 1);
  EXPECT_EQ(store.last_writer(v), kNoProc);
  EXPECT_EQ(store.distinct_writers(v), 0);
  EXPECT_EQ(store.home(v), 2);  // layout survives reset
}

TEST(DsmPricing, HomeDecidesEverything) {
  auto mem = make_dsm(3);
  const VarId mine = mem->allocate_local(0, 0);
  const VarId yours = mem->allocate_local(1, 0);
  const VarId global = mem->allocate_global(0);

  EXPECT_FALSE(mem->classify_rmr(0, MemOp::read(mine)));
  EXPECT_TRUE(mem->classify_rmr(0, MemOp::read(yours)));
  EXPECT_TRUE(mem->classify_rmr(0, MemOp::read(global)));
  EXPECT_TRUE(mem->classify_rmr(1, MemOp::write(mine, 1)));
  EXPECT_FALSE(mem->classify_rmr(1, MemOp::write(yours, 1)));

  // Pricing never changes with history in DSM: spin on own module is free.
  for (int i = 0; i < 10; ++i) mem->apply(0, MemOp::read(mine));
  EXPECT_EQ(mem->ledger().rmrs(0), 0u);
  for (int i = 0; i < 10; ++i) mem->apply(0, MemOp::read(yours));
  EXPECT_EQ(mem->ledger().rmrs(0), 10u);
}

TEST(CcWriteThrough, RepeatedReadsCostOneRmrUntilInvalidated) {
  auto mem = make_cc(3);  // write-through = the paper's ideal cache
  const VarId b = mem->allocate_global(0);
  // First read misses; nine more hit.
  for (int i = 0; i < 10; ++i) mem->apply(0, MemOp::read(b));
  EXPECT_EQ(mem->ledger().rmrs(0), 1u);
  // A nontrivial op by another process invalidates p0's copy...
  mem->apply(1, MemOp::write(b, 1));
  // ...so the next read misses once, then hits again.
  for (int i = 0; i < 10; ++i) mem->apply(0, MemOp::read(b));
  EXPECT_EQ(mem->ledger().rmrs(0), 2u);
}

TEST(CcWriteThrough, WritesAlwaysRemote) {
  auto mem = make_cc(2);
  const VarId v = mem->allocate_global(0);
  mem->apply(0, MemOp::write(v, 1));
  mem->apply(0, MemOp::write(v, 2));
  EXPECT_EQ(mem->ledger().rmrs(0), 2u);
  // Writer retains a valid copy: its own read hits.
  mem->apply(0, MemOp::read(v));
  EXPECT_EQ(mem->ledger().rmrs(0), 2u);
}

TEST(CcWriteThrough, TrivialOpsDoNotInvalidate) {
  auto mem = make_cc(2);
  const VarId v = mem->allocate_global(3);
  mem->apply(0, MemOp::read(v));
  // Failed CAS by p1 does not overwrite, hence does not invalidate p0.
  mem->apply(1, MemOp::cas(v, 99, 1));
  mem->apply(0, MemOp::read(v));
  EXPECT_EQ(mem->ledger().rmrs(0), 1u);
}

TEST(CcWriteBack, ExclusiveOwnerWritesLocally) {
  auto mem = make_cc(2, CcPolicy::kWriteBack);
  const VarId v = mem->allocate_global(0);
  mem->apply(0, MemOp::write(v, 1));  // miss: take M
  mem->apply(0, MemOp::write(v, 2));  // hit in M
  mem->apply(0, MemOp::write(v, 3));  // hit in M
  EXPECT_EQ(mem->ledger().rmrs(0), 1u);
  // p1's read demotes the owner; p0's next write re-acquires M (one RMR).
  mem->apply(1, MemOp::read(v));
  mem->apply(0, MemOp::write(v, 4));
  EXPECT_EQ(mem->ledger().rmrs(0), 2u);
  // p0's own read after its write still hits.
  mem->apply(0, MemOp::read(v));
  EXPECT_EQ(mem->ledger().rmrs(0), 2u);
}

TEST(CcMesi, ExclusiveCleanUpgradesSilently) {
  auto mem = make_cc(3, CcPolicy::kMesi);
  const VarId v = mem->allocate_global(0);
  // p0 read-misses with no other sharers: takes E.
  auto o = mem->apply(0, MemOp::read(v));
  EXPECT_TRUE(o.rmr);
  // Its first write is the silent E->M upgrade: LOCAL (vs 1 RMR under MSI).
  o = mem->apply(0, MemOp::write(v, 1));
  EXPECT_FALSE(o.rmr);
  // Further writes hit in M.
  o = mem->apply(0, MemOp::write(v, 2));
  EXPECT_FALSE(o.rmr);
  EXPECT_EQ(mem->ledger().rmrs(0), 1u);  // read-then-write = one RMR total
}

TEST(CcMesi, SecondReaderDemotesExclusive) {
  auto mem = make_cc(3, CcPolicy::kMesi);
  const VarId v = mem->allocate_global(0);
  mem->apply(0, MemOp::read(v));  // p0 takes E
  mem->apply(1, MemOp::read(v));  // p1 shares: E demoted to S
  // p0's write is no longer silent: it must invalidate p1.
  const auto o = mem->apply(0, MemOp::write(v, 1));
  EXPECT_TRUE(o.rmr);
  // And p1's copy is gone.
  EXPECT_TRUE(mem->classify_rmr(1, MemOp::read(v)));
}

TEST(CcMesi, ReadThenWriteCheaperThanWriteBack) {
  // The E state's whole purpose, quantified: private read-modify-write.
  auto msi = make_cc(2, CcPolicy::kWriteBack);
  auto mesi = make_cc(2, CcPolicy::kMesi);
  const VarId a = msi->allocate_global(0);
  const VarId b = mesi->allocate_global(0);
  for (int i = 0; i < 10; ++i) {
    msi->apply(0, MemOp::read(a));
    msi->apply(0, MemOp::write(a, i));
    mesi->apply(0, MemOp::read(b));
    mesi->apply(0, MemOp::write(b, i));
  }
  EXPECT_EQ(msi->ledger().rmrs(0), 2u);   // miss to S, upgrade to M, then hits
  EXPECT_EQ(mesi->ledger().rmrs(0), 1u);  // miss to E, silent upgrade, hits
}

TEST(CcLfcu, FailedComparisonsAreLocalOnceCached) {
  auto mem = make_cc(2, CcPolicy::kLfcu);
  const VarId lock = mem->allocate_global(0);
  // p0 takes the lock: TAS writes, 1 RMR.
  mem->apply(0, MemOp::tas(lock));
  EXPECT_EQ(mem->ledger().rmrs(0), 1u);
  // p1's first failed TAS fetches a copy (1 RMR)...
  mem->apply(1, MemOp::tas(lock));
  EXPECT_EQ(mem->ledger().rmrs(1), 1u);
  // ...and every further failed TAS is serviced from cache: 0 extra RMRs.
  for (int i = 0; i < 20; ++i) mem->apply(1, MemOp::tas(lock));
  EXPECT_EQ(mem->ledger().rmrs(1), 1u);
}

TEST(CcLfcu, WriteUpdatesRemoteCopiesInsteadOfInvalidating) {
  auto mem = make_cc(3, CcPolicy::kLfcu);
  const VarId v = mem->allocate_global(0);
  mem->apply(1, MemOp::read(v));  // p1 caches a copy
  mem->apply(0, MemOp::write(v, 7));
  // p1's copy was updated in place, so its next read hits and sees 7.
  const OpOutcome o = mem->apply(1, MemOp::read(v));
  EXPECT_FALSE(o.rmr);
  EXPECT_EQ(o.result, 7);
  EXPECT_EQ(mem->ledger().rmrs(1), 1u);
}

TEST(CcWriteThroughVsLfcu, TasSpinSeparation) {
  // The Section 3 LFCU aside: a TAS spin loop costs O(1) RMRs under LFCU but
  // one RMR per attempt under standard invalidation-based CC.
  auto standard = make_cc(2, CcPolicy::kWriteThrough);
  auto lfcu = make_cc(2, CcPolicy::kLfcu);
  const VarId a = standard->allocate_global(0);
  const VarId b = lfcu->allocate_global(0);
  standard->apply(0, MemOp::tas(a));
  lfcu->apply(0, MemOp::tas(b));
  for (int i = 0; i < 50; ++i) {
    standard->apply(1, MemOp::tas(a));
    lfcu->apply(1, MemOp::tas(b));
  }
  EXPECT_EQ(standard->ledger().rmrs(1), 50u);
  EXPECT_EQ(lfcu->ledger().rmrs(1), 1u);
}

TEST(Ledger, TotalsAndReset) {
  auto mem = make_dsm(2);
  const VarId v = mem->allocate_local(0, 0);
  mem->apply(0, MemOp::read(v));
  mem->apply(1, MemOp::read(v));
  mem->apply(1, MemOp::write(v, 1));
  EXPECT_EQ(mem->ledger().total_ops(), 3u);
  EXPECT_EQ(mem->ledger().total_rmrs(), 2u);
  EXPECT_EQ(mem->ledger().locals(0), 1u);
  EXPECT_EQ(mem->ledger().max_rmrs(), 2u);
  mem->reset();
  EXPECT_EQ(mem->ledger().total_ops(), 0u);
  EXPECT_EQ(mem->store().value(v), 0);
}

TEST(SharedMemoryReset, CachesAreCleared) {
  auto mem = make_cc(2);
  const VarId v = mem->allocate_global(0);
  mem->apply(0, MemOp::read(v));
  EXPECT_FALSE(mem->classify_rmr(0, MemOp::read(v)));  // cached
  mem->reset();
  EXPECT_TRUE(mem->classify_rmr(0, MemOp::read(v)));   // cold again
}


// ---- pinned per-op pricing for failed TAS / failed CAS -------------------
//
// These lock the MemoryStore::would_write contract and each cost model's
// treatment of comparison ops that fail, so the bitmask slot representation
// (or any future store rewrite) cannot silently change pricing.

TEST(WouldWrite, ComparisonOpsPinned) {
  MemoryStore store(2);
  const VarId flag = store.allocate(0, kNoProc);
  // TAS on a clear flag overwrites; on a set flag it fails the comparison.
  EXPECT_TRUE(store.would_write(0, MemOp::tas(flag)));
  store.apply(0, MemOp::tas(flag));
  EXPECT_FALSE(store.would_write(1, MemOp::tas(flag)));
  // CAS overwrites iff the expected value matches.
  EXPECT_FALSE(store.would_write(1, MemOp::cas(flag, 0, 7)));
  EXPECT_TRUE(store.would_write(1, MemOp::cas(flag, 1, 7)));
  // SC overwrites iff the caller holds a reservation.
  EXPECT_FALSE(store.would_write(1, MemOp::sc(flag, 7)));
  store.apply(1, MemOp::ll(flag));
  EXPECT_TRUE(store.would_write(1, MemOp::sc(flag, 7)));
}

TEST(DsmPricing, FailedComparisonsPricedByHomeOnly) {
  // DSM is stateless: success or failure never matters, only the home.
  auto mem = make_dsm(2);
  const VarId local = mem->allocate_local(0, 1);
  const VarId remote = mem->allocate_local(1, 1);
  // Failed CAS (expected 0, value is 1) and failed TAS (flag already set).
  EXPECT_FALSE(mem->classify_rmr(0, MemOp::cas(local, 0, 7)));
  EXPECT_FALSE(mem->classify_rmr(0, MemOp::tas(local)));
  EXPECT_TRUE(mem->classify_rmr(0, MemOp::cas(remote, 0, 7)));
  EXPECT_TRUE(mem->classify_rmr(0, MemOp::tas(remote)));
  mem->apply(0, MemOp::cas(remote, 0, 7));
  mem->apply(0, MemOp::tas(local));
  EXPECT_EQ(mem->ledger().rmrs(0), 1u);
}

TEST(CcWriteThrough, FailedTasStillRmrWhenCached) {
  // Outside LFCU a failed comparison is not read-like: standard caches
  // arbitrate the line for the atomic op, so caching does not help.
  auto mem = make_cc(2, CcPolicy::kWriteThrough);
  const VarId lock = mem->allocate_global(0);
  mem->apply(0, MemOp::tas(lock));   // p0 takes the lock
  mem->apply(1, MemOp::read(lock));  // p1 caches a copy
  EXPECT_EQ(mem->ledger().rmrs(1), 1u);
  EXPECT_FALSE(mem->classify_rmr(1, MemOp::read(lock)));  // read hits...
  EXPECT_TRUE(mem->classify_rmr(1, MemOp::tas(lock)));    // ...failed TAS not
  mem->apply(1, MemOp::tas(lock));
  EXPECT_EQ(mem->ledger().rmrs(1), 2u);
}

TEST(CcWriteBack, FailedCasHitsOnlyInOwnModifiedLine) {
  auto mem = make_cc(2, CcPolicy::kWriteBack);
  const VarId v = mem->allocate_global(1);
  mem->apply(0, MemOp::write(v, 1));  // p0 holds the line in M
  // Failed CAS by the M owner is a cache hit; by anyone else it is an RMR.
  EXPECT_FALSE(mem->classify_rmr(0, MemOp::cas(v, 0, 7)));
  EXPECT_TRUE(mem->classify_rmr(1, MemOp::cas(v, 0, 7)));
  mem->apply(0, MemOp::cas(v, 0, 7));
  EXPECT_EQ(mem->ledger().rmrs(0), 1u);  // only the initial write
}

TEST(CcMesi, FailedCasHitsInExclusiveCleanLine) {
  auto mem = make_cc(3, CcPolicy::kMesi);
  const VarId v = mem->allocate_global(1);
  mem->apply(0, MemOp::read(v));  // read miss, no other copies: E state
  // The silent E->M upgrade prices a failed (or successful) CAS as local.
  EXPECT_FALSE(mem->classify_rmr(0, MemOp::cas(v, 0, 7)));
  // A second reader demotes E; now p0's failed CAS arbitrates remotely.
  mem->apply(1, MemOp::read(v));
  EXPECT_TRUE(mem->classify_rmr(0, MemOp::cas(v, 0, 7)));
}

TEST(CcLfcu, FailedCasLocalOnceCachedButSuccessfulCasRmr) {
  auto mem = make_cc(2, CcPolicy::kLfcu);
  const VarId v = mem->allocate_global(1);
  mem->apply(1, MemOp::read(v));  // p1 caches a copy
  // Failed comparison serviced locally (the LFCU property)...
  EXPECT_FALSE(mem->classify_rmr(1, MemOp::cas(v, 0, 7)));
  // ...but one that would overwrite engages the interconnect regardless.
  EXPECT_TRUE(mem->classify_rmr(1, MemOp::cas(v, 1, 7)));
}

// ---- bitmask slots across the 64-process word boundary -------------------

TEST(MemoryStore, WriterAndReservationMasksCrossWordBoundaries) {
  // Sweeps drive N past 64 (E1 reaches 1024), so the process sets span
  // multiple mask words; pin the boundary procs explicitly.
  MemoryStore store(130);
  const VarId v = store.allocate(0, kNoProc);
  for (const ProcId p : {0, 63, 64, 65, 129}) {
    store.apply(p, MemOp::write(v, 10 + p));
  }
  EXPECT_EQ(store.distinct_writers(v), 5);
  store.forget_writer(v, 64);
  EXPECT_EQ(store.distinct_writers(v), 4);

  for (const ProcId p : {63, 64, 129}) store.apply(p, MemOp::ll(v));
  EXPECT_TRUE(store.has_reservation(63, v));
  EXPECT_TRUE(store.has_reservation(64, v));
  EXPECT_TRUE(store.has_reservation(129, v));
  EXPECT_FALSE(store.has_reservation(65, v));

  store.clear_reservations(129);
  EXPECT_TRUE(store.has_reservation(63, v));
  EXPECT_FALSE(store.has_reservation(129, v));
  EXPECT_FALSE(store.apply(129, MemOp::sc(v, 1)).wrote);
  EXPECT_TRUE(store.apply(64, MemOp::sc(v, 1)).wrote);
  // The successful SC consumed every remaining reservation.
  EXPECT_FALSE(store.has_reservation(63, v));
  EXPECT_EQ(store.distinct_writers(v), 5);  // 64 re-entered the writer set
}

TEST(Ledger, ForgetIsIdempotentAndSafeAfterReset) {
  auto mem = make_dsm(2);
  const VarId v = mem->allocate_local(1, 0);
  mem->apply(0, MemOp::write(v, 1));
  mem->apply(1, MemOp::write(v, 2));
  RmrLedger& led = mem->ledger();
  EXPECT_EQ(led.total_ops(), 2u);
  EXPECT_EQ(led.total_rmrs(), 1u);
  led.forget(0);
  EXPECT_EQ(led.total_ops(), 1u);
  EXPECT_EQ(led.total_rmrs(), 0u);
  // Second forget of the same process is a no-op, not an underflow.
  led.forget(0);
  EXPECT_EQ(led.total_ops(), 1u);
  EXPECT_EQ(led.total_rmrs(), 0u);
  // forget after reset: per-proc counters are zero, totals stay zero.
  led.reset();
  led.forget(1);
  EXPECT_EQ(led.total_ops(), 0u);
  EXPECT_EQ(led.total_rmrs(), 0u);
}

}  // namespace
}  // namespace rmrsim
