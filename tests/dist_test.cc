// Sharded exploration: fingerprints, the snapshot/work-item wire codec,
// frame integrity, and the dist executor's byte-identical merge.
//
// The multi-process pool itself (fork/exec, pipes, respawn) is covered
// end-to-end by the shard-parity ctests and resume_harness; these tests pin
// the layers underneath with no processes involved:
//
//  * WorldSnapshot::fingerprint — deterministic across fork/restore round
//    trips and across re-encodes, sensitive to a single poked store word.
//  * encode/decode_world_snapshot — canonical round trip, loud rejection
//    of truncation and structural mismatch.
//  * protocol frames — CRC-checked round trip over a real pipe; torn
//    writes and flipped bytes throw, clean EOF returns false.
//  * checkpoint ItemOutcome v2 — footprint summaries survive the record
//    round trip (the dedup eligibility data rides the same bytes).
//  * a loopback DistItemExecutor that pushes every work item through the
//    full wire codec and run_dist_item in-process — the whole dist stack
//    minus fork — must reproduce the in-process search byte-for-byte.
//  * dedup_states — verdict-equality gate: identical results with and
//    without dedup, dedup_hits > 0 on a workload with equivalent subtrees.
#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "common/codec.h"
#include "memory/shared_memory.h"
#include "runtime/coro.h"
#include "runtime/simulation.h"
#include "runtime/snapshot_codec.h"
#include "signaling/algorithm.h"
#include "signaling/checker.h"
#include "signaling/dsm_registration.h"
#include "verify/checkpoint.h"
#include "verify/dist/protocol.h"
#include "verify/dpor.h"
#include "verify/explorer.h"
#include "verify/snapshot_cache.h"

namespace rmrsim {
namespace {

ExploreBuilder signaling_builder(int n_waiters, int polls) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(n_waiters + 1);
    auto alg = std::make_shared<DsmRegistrationSignal>(
        *inst.mem, static_cast<ProcId>(n_waiters));
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreChecker polling_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h); v.has_value()) return v->what;
    return std::nullopt;
  };
}

/// A checker with no record dependence — sound under counters_only_history
/// (which dedup requires).
ExploreChecker null_checker() {
  return [](const History&) -> std::optional<std::string> {
    return std::nullopt;
  };
}

std::shared_ptr<const WorldSnapshot> snapshot_after(
    const ExploreBuilder& build, const std::vector<ProcId>& schedule) {
  ExploreInstance inst = build();
  inst.sim->enable_fork_log();
  for (const ProcId p : schedule) inst.sim->macro_step(p);
  return take_snapshot(inst);
}

// ---- fingerprint ------------------------------------------------------

TEST(Fingerprint, StableAcrossForkRestoreRoundTrips) {
  const ExploreBuilder build = signaling_builder(2, 1);
  const auto snap = snapshot_after(build, {0, 1, 2});
  const std::uint64_t fp = snap->fingerprint();
  EXPECT_EQ(fp, snap->fingerprint()) << "fingerprint must be pure";

  // Restore the world, snapshot it again untouched: same semantic state,
  // same hash — the property coordinator-side dedup stands on.
  ExploreInstance restored = restore_instance(*snap);
  const auto again = take_snapshot(restored);
  EXPECT_EQ(again->fingerprint(), fp);

  // And across the wire: decode(encode(snap)) hashes identically too.
  const auto proto = snapshot_after(build, {});
  const WorldSnapshot decoded =
      decode_world_snapshot(encode_world_snapshot(*snap), *proto);
  EXPECT_EQ(decoded.fingerprint(), fp);
}

TEST(Fingerprint, DistinguishesStatesAndIgnoresHowTheyWereReached) {
  const ExploreBuilder build = signaling_builder(2, 1);
  const auto before = snapshot_after(build, {});
  const auto after = snapshot_after(build, {0});
  EXPECT_NE(before->fingerprint(), after->fingerprint())
      << "a executed step must change the world hash";

  // A single poked store word flips the hash: two identically-driven
  // worlds hash equal until exactly one word of one store is changed.
  const auto a = snapshot_after(build, {0, 1});
  ExploreInstance inst = build();
  inst.sim->enable_fork_log();
  inst.sim->macro_step(0);
  inst.sim->macro_step(1);
  ASSERT_EQ(take_snapshot(inst)->fingerprint(), a->fingerprint());
  MemoryStore& store = inst.mem->store();
  ASSERT_GT(store.num_vars(), 0);
  store.poke(VarId{0}, store.value(VarId{0}) + 1, kNoProc);
  EXPECT_NE(take_snapshot(inst)->fingerprint(), a->fingerprint());
}

// ---- snapshot wire codec ---------------------------------------------

TEST(SnapshotWireCodec, CanonicalRoundTrip) {
  const ExploreBuilder build = signaling_builder(2, 1);
  const auto snap = snapshot_after(build, {0, 2, 1});
  const auto proto = snapshot_after(build, {});

  const std::string wire = encode_world_snapshot(*snap);
  const WorldSnapshot decoded = decode_world_snapshot(wire, *proto);
  // Canonical: re-encoding the decoded snapshot reproduces the bytes.
  EXPECT_EQ(encode_world_snapshot(decoded), wire);

  // The decoded world must actually run: restore it and drive the same
  // macro step in both worlds, then compare the hashes again.
  ExploreInstance orig = restore_instance(*snap);
  ExploreInstance copy = restore_instance(decoded);
  orig.sim->macro_step(1);
  copy.sim->macro_step(1);
  EXPECT_EQ(take_snapshot(orig)->fingerprint(),
            take_snapshot(copy)->fingerprint());
}

TEST(SnapshotWireCodec, RejectsTruncationAndStructuralMismatch) {
  const ExploreBuilder build = signaling_builder(2, 1);
  const auto snap = snapshot_after(build, {0});
  const auto proto = snapshot_after(build, {});
  const std::string wire = encode_world_snapshot(*snap);

  // Truncation at any coarse cut must throw, never return a world.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, wire.size() / 2, wire.size() - 1}) {
    EXPECT_THROW(decode_world_snapshot(wire.substr(0, keep), *proto),
                 std::exception)
        << "truncated to " << keep << " bytes";
  }
  // Trailing garbage is a malformed payload, not padding.
  EXPECT_THROW(decode_world_snapshot(wire + "x", *proto), std::exception);

  // A proto of a structurally different instance (different store layout /
  // process count) must be refused: grafting immutables across instance
  // shapes would explore a subtly different world.
  const auto other_proto = snapshot_after(signaling_builder(3, 1), {});
  EXPECT_THROW(decode_world_snapshot(wire, *other_proto), std::exception);
}

// ---- pipe frames ------------------------------------------------------

struct Pipe {
  int fd[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fd), 0); }
  ~Pipe() {
    if (fd[0] >= 0) ::close(fd[0]);
    if (fd[1] >= 0) ::close(fd[1]);
  }
  void close_write() {
    ::close(fd[1]);
    fd[1] = -1;
  }
};

TEST(DistFrames, RoundTripAndCleanEof) {
  Pipe p;
  // Multi-PIPE_BUF but under the 64 KiB pipe capacity: both frames must be
  // fully buffered before the single-threaded read below drains them.
  dist::write_frame(p.fd[1], "hello frame");
  dist::write_frame(p.fd[1], std::string(40'000, 'x'));
  p.close_write();

  std::string payload;
  ASSERT_TRUE(dist::read_frame(p.fd[0], &payload));
  EXPECT_EQ(payload, "hello frame");
  ASSERT_TRUE(dist::read_frame(p.fd[0], &payload));
  EXPECT_EQ(payload, std::string(40'000, 'x'));
  // Writer gone, no bytes pending: clean EOF is false, not a throw — the
  // worker's normal shutdown signal.
  EXPECT_FALSE(dist::read_frame(p.fd[0], &payload));
}

TEST(DistFrames, TornFrameAndCorruptionThrow) {
  {
    // EOF mid-frame: the length header promises more bytes than arrive.
    Pipe p;
    std::string frame;
    put_record(frame, "a torn frame's payload");
    const std::string half = frame.substr(0, frame.size() / 2);
    ASSERT_EQ(::write(p.fd[1], half.data(), half.size()),
              static_cast<ssize_t>(half.size()));
    p.close_write();
    std::string payload;
    EXPECT_THROW(dist::read_frame(p.fd[0], &payload), std::exception);
  }
  {
    // One flipped payload byte: the CRC trailer must catch it.
    Pipe p;
    std::string frame;
    put_record(frame, "payload protected by crc32");
    frame[6] ^= 0x20;
    ASSERT_EQ(::write(p.fd[1], frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    p.close_write();
    std::string payload;
    EXPECT_THROW(dist::read_frame(p.fd[0], &payload), std::exception);
  }
}

TEST(DistProtocol, MessageRoundTrips) {
  dist::HelloMsg hello;
  hello.fingerprint = 0xDEADBEEFCAFEF00DULL;
  const dist::HelloMsg hello2 = dist::decode_hello(dist::encode_hello(hello));
  EXPECT_EQ(hello2.version, dist::kProtocolVersion);
  EXPECT_EQ(hello2.fingerprint, hello.fingerprint);

  dist::ItemMsg item;
  item.index = 7;
  item.base_nodes = 12345;
  item.collect_completes = true;
  item.item.schedule = {0, 2, 1};
  item.item.naive_product = 6.0;
  item.item.naive_sum = 11.0;
  DporPathStep step;
  step.proc = 2;
  step.fp = {true, 3, AccessClass::kMutate, false, false};
  step.clock = {1, 0, 2};
  item.item.path = {step};
  item.item.sleep = {{1, {true, 5, AccessClass::kObserve, true,
                          false}}};
  item.snapshot = "opaque snapshot bytes";
  const dist::ItemMsg item2 = dist::decode_item(dist::encode_item(item));
  EXPECT_EQ(item2.index, item.index);
  EXPECT_EQ(item2.base_nodes, item.base_nodes);
  EXPECT_EQ(item2.collect_completes, item.collect_completes);
  EXPECT_EQ(item2.item.schedule, item.item.schedule);
  ASSERT_EQ(item2.item.path.size(), 1u);
  EXPECT_EQ(item2.item.path[0].proc, 2);
  EXPECT_EQ(item2.item.path[0].fp.var, 3);
  EXPECT_EQ(item2.item.path[0].clock, step.clock);
  ASSERT_EQ(item2.item.sleep.size(), 1u);
  EXPECT_EQ(item2.item.sleep[0].fp.var, 5);
  EXPECT_EQ(item2.item.naive_product, 6.0);
  EXPECT_EQ(item2.item.naive_sum, 11.0);
  EXPECT_EQ(item2.snapshot, item.snapshot);

  dist::OutcomeMsg out;
  out.index = 7;
  out.result.ok = true;
  out.result.worker_failures = 2;
  out.result.item_retries = 1;
  out.result.outcome.schedule = {0, 2, 1};
  out.result.outcome.charged = 42;
  out.result.outcome.footprints = {
      {true, 1, AccessClass::kMutate, true, false}};
  const dist::OutcomeMsg out2 =
      dist::decode_outcome(dist::encode_outcome(out));
  EXPECT_EQ(out2.index, 7u);
  EXPECT_TRUE(out2.result.ok);
  EXPECT_EQ(out2.result.worker_failures, 2u);
  EXPECT_EQ(out2.result.item_retries, 1u);
  EXPECT_EQ(out2.result.outcome.schedule, out.result.outcome.schedule);
  EXPECT_EQ(out2.result.outcome.charged, 42u);
  ASSERT_EQ(out2.result.outcome.footprints.size(), 1u);
  EXPECT_EQ(out2.result.outcome.footprints[0].var, 1);

  dist::OutcomeMsg bad;
  bad.index = 9;
  bad.result.ok = false;
  bad.result.quarantine_reason = "deliberate";
  const dist::OutcomeMsg bad2 =
      dist::decode_outcome(dist::encode_outcome(bad));
  EXPECT_FALSE(bad2.result.ok);
  EXPECT_EQ(bad2.result.quarantine_reason, "deliberate");
}

// ---- checkpoint record v2 --------------------------------------------

TEST(CheckpointV2, ItemOutcomeFootprintsSurviveTheRecordRoundTrip) {
  ItemOutcome out;
  out.schedule = {1, 0, 2};
  out.charged = 17;
  out.nodes = 17;
  out.complete = 3;
  out.truncated = 1;
  out.estimate_sum = 123.5;
  out.leaves = 4;
  out.footprints = {
      {true, 0, AccessClass::kObserve, false, false},
      {true, 2, AccessClass::kMutate, true, false},
      {false, kNoVar, AccessClass::kObserve, false, true},
  };
  const ItemOutcome back = decode_item_outcome(encode_item_outcome(out));
  EXPECT_EQ(back.schedule, out.schedule);
  EXPECT_EQ(back.charged, out.charged);
  ASSERT_EQ(back.footprints.size(), 3u);
  EXPECT_EQ(back.footprints[0].var, 0);
  EXPECT_EQ(back.footprints[0].access, AccessClass::kObserve);
  EXPECT_EQ(back.footprints[1].var, 2);
  EXPECT_EQ(back.footprints[1].access, AccessClass::kMutate);
  EXPECT_TRUE(back.footprints[1].observable);
  EXPECT_FALSE(back.footprints[2].has_op);
  EXPECT_TRUE(back.footprints[2].terminated);
}

// ---- loopback executor: the dist stack minus fork --------------------

/// Runs every item through the complete wire path — encode the item and
/// its snapshot, decode both (grafting immutables from a locally built
/// proto, exactly like a worker), execute via run_dist_item, then encode
/// and decode the outcome — all in-process. Any divergence the codec or
/// run_dist_item introduces shows up as a merge difference.
class LoopbackExecutor : public DistItemExecutor {
 public:
  LoopbackExecutor(ExploreBuilder build, ExploreChecker check,
                   DporOptions options)
      : build_(std::move(build)),
        check_(std::move(check)),
        options_(std::move(options)) {
    if (options_.snapshot_mode == SnapshotMode::kSnapshot) {
      proto_ = snapshot_after(build_, {});
    }
  }

  void run_round(
      const std::vector<DporWorkItem>& items,
      const std::vector<std::size_t>& live,
      const std::function<std::uint64_t()>& committed_nodes,
      const std::function<void(std::size_t, DistItemResult&&)>& done)
      override {
    for (const std::size_t idx : live) {
      dist::ItemMsg msg;
      msg.index = idx;
      msg.base_nodes = committed_nodes();
      msg.collect_completes = static_cast<bool>(options_.on_complete_schedule);
      msg.item.schedule = items[idx].schedule;
      msg.item.path = items[idx].path;
      msg.item.sleep = items[idx].sleep;
      msg.item.naive_product = items[idx].naive_product;
      msg.item.naive_sum = items[idx].naive_sum;
      if (items[idx].root_snap != nullptr) {
        msg.snapshot = encode_world_snapshot(*items[idx].root_snap);
      }

      dist::ItemMsg got = dist::decode_item(dist::encode_item(msg));
      if (!got.snapshot.empty()) {
        got.item.root_snap = std::make_shared<const WorldSnapshot>(
            decode_world_snapshot(got.snapshot, *proto_));
      }
      DporOptions opts = options_;
      opts.on_complete_schedule =
          got.collect_completes
              ? std::function<void(const std::vector<ProcId>&)>(
                    [](const std::vector<ProcId>&) {})
              : nullptr;
      dist::OutcomeMsg out;
      out.index = got.index;
      out.result =
          run_dist_item(build_, check_, opts, got.item, got.base_nodes);
      dist::OutcomeMsg final_out =
          dist::decode_outcome(dist::encode_outcome(out));
      done(static_cast<std::size_t>(final_out.index),
           std::move(final_out.result));
    }
  }

 private:
  ExploreBuilder build_;
  ExploreChecker check_;
  DporOptions options_;
  std::shared_ptr<const WorldSnapshot> proto_;
};

void expect_same_result(const ExploreResult& a, const ExploreResult& b) {
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  EXPECT_EQ(a.complete_schedules, b.complete_schedules);
  EXPECT_EQ(a.truncated_schedules, b.truncated_schedules);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.violating_schedule, b.violating_schedule);
  EXPECT_EQ(a.quarantined_items.size(), b.quarantined_items.size());
  EXPECT_EQ(a.stats.replayed_steps, b.stats.replayed_steps);
  EXPECT_EQ(a.stats.sleep_set_prunes, b.stats.sleep_set_prunes);
  EXPECT_EQ(a.stats.backtrack_points, b.stats.backtrack_points);
  EXPECT_EQ(a.stats.sleep_blocked_paths, b.stats.sleep_blocked_paths);
  EXPECT_EQ(a.stats.naive_tree_estimate, b.stats.naive_tree_estimate);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.work_items, b.stats.work_items);
}

TEST(DistExecutor, LoopbackMergesByteIdenticalToInProcess) {
  const ExploreBuilder build = signaling_builder(2, 1);
  const ExploreChecker check = polling_checker();
  DporOptions opt;
  opt.max_depth = 14;

  const ExploreResult inproc = explore_dpor(build, check, opt);
  LoopbackExecutor exec(build, check, opt);
  DporOptions dist_opt = opt;
  dist_opt.dist = &exec;
  const ExploreResult dist = explore_dpor(build, check, dist_opt);
  expect_same_result(inproc, dist);
  EXPECT_TRUE(dist.exhausted);
  EXPECT_GT(dist.stats.work_items, 0u)
      << "the workload must actually exercise the executor";
}

TEST(DistExecutor, LoopbackMatchesInReplayModeToo) {
  const ExploreBuilder build = signaling_builder(2, 1);
  const ExploreChecker check = polling_checker();
  DporOptions opt;
  opt.max_depth = 14;
  opt.snapshot_mode = SnapshotMode::kReplay;

  const ExploreResult inproc = explore_dpor(build, check, opt);
  LoopbackExecutor exec(build, check, opt);
  DporOptions dist_opt = opt;
  dist_opt.dist = &exec;
  const ExploreResult dist = explore_dpor(build, check, dist_opt);
  expect_same_result(inproc, dist);
}

// ---- fingerprint dedup -----------------------------------------------

// Every op in the signaling algorithms sits inside a call boundary, and
// call boundaries are observable events — mutually dependent by fiat — so
// signaling subtrees are never dedup-eligible. Convergent work items need
// raw programs: proc A rewrites x with its current value (a mutate-class
// race against B's read whose orders nonetheless reconverge — same store,
// same last writer, same observed values, same resume logs), B reads x and
// rewrites y likewise, then both run private tails the trunk is
// independent of.
ProcTask rewriter(ProcCtx& ctx, VarId mine, Word keep, VarId other,
                  VarId scratch, int tail) {
  co_await ctx.write(mine, keep);
  co_await ctx.write(mine, keep);
  co_await ctx.read(other);
  for (int i = 0; i < tail; ++i) co_await ctx.write(scratch, i + 1);
}

ProcTask reader_then_rewriter(ProcCtx& ctx, VarId mine, Word keep,
                              VarId other, VarId scratch, int tail) {
  co_await ctx.read(other);
  co_await ctx.write(mine, keep);
  co_await ctx.write(mine, keep);
  for (int i = 0; i < tail; ++i) co_await ctx.write(scratch, i + 1);
}

ExploreBuilder convergent_builder(int tail) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(2);
    const VarId x = inst.mem->allocate_global(5, "x");
    const VarId y = inst.mem->allocate_global(7, "y");
    const VarId ta = inst.mem->allocate_local(0, 0, "ta");
    const VarId tb = inst.mem->allocate_local(1, 0, "tb");
    std::vector<Program> programs;
    programs.emplace_back([=](ProcCtx& c) {
      return rewriter(c, x, 5, y, ta, tail);
    });
    programs.emplace_back([=](ProcCtx& c) {
      return reader_then_rewriter(c, y, 7, x, tb, tail);
    });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    return inst;
  };
}

TEST(DedupStates, VerdictEqualWithHitsOnEquivalentSubtrees) {
  const ExploreBuilder build = convergent_builder(4);
  const ExploreChecker check = null_checker();
  DporOptions opt;
  opt.max_depth = 30;
  opt.trunk_depth = 6;  // items root right after the convergent race phase
  opt.counters_only_history = true;  // required by dedup_states

  const ExploreResult plain = explore_dpor(build, check, opt);
  DporOptions dd = opt;
  dd.dedup_states = true;
  const ExploreResult deduped = explore_dpor(build, check, dd);

  // The gate: dedup may only change how outcomes were obtained, never what
  // the search reports.
  EXPECT_EQ(deduped.nodes_visited, plain.nodes_visited);
  EXPECT_EQ(deduped.complete_schedules, plain.complete_schedules);
  EXPECT_EQ(deduped.truncated_schedules, plain.truncated_schedules);
  EXPECT_EQ(deduped.exhausted, plain.exhausted);
  EXPECT_EQ(deduped.violation, plain.violation);
  EXPECT_EQ(deduped.violating_schedule, plain.violating_schedule);
  EXPECT_EQ(plain.stats.dedup_hits, 0u);
  EXPECT_GT(deduped.stats.dedup_hits, 0u)
      << "this workload must have equivalent subtrees to reuse";
}

TEST(DedupStates, RequiresCountersOnlyHistory) {
  const ExploreBuilder build = signaling_builder(2, 1);
  DporOptions dd;
  dd.max_depth = 12;
  dd.dedup_states = true;  // counters_only_history deliberately off
  EXPECT_THROW(explore_dpor(build, null_checker(), dd), std::exception);
}

}  // namespace
}  // namespace rmrsim
