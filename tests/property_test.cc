// Cross-cutting property tests:
//  * determinism — same schedule => identical history, for every algorithm;
//  * erasure equivalence — in-place erasure (Lemma 6.7) produces exactly
//    the state and history of the erased-process-free replay;
//  * cost-model transparency — values computed by an algorithm are
//    identical under every cost model (pricing must never change
//    semantics);
//  * checker unit cases on synthetic histories.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "sched/fault.h"
#include "sched/schedulers.h"
#include "signaling/cas_registration.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/llsc_registration.h"
#include "signaling/workload.h"

namespace rmrsim {
namespace {

using Factory = SignalingFactory;

std::vector<std::pair<const char*, Factory>> algorithms(int nprocs) {
  return {
      {"cc-flag",
       [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); }},
      {"dsm-registration",
       [nprocs](SharedMemory& m) {
         return std::make_unique<DsmRegistrationSignal>(
             m, static_cast<ProcId>(nprocs - 1));
       }},
      {"dsm-queue",
       [](SharedMemory& m) { return std::make_unique<DsmQueueSignal>(m); }},
      {"cas-registration",
       [](SharedMemory& m) {
         return std::make_unique<CasRegistrationSignal>(m);
       }},
      {"llsc-registration",
       [](SharedMemory& m) {
         return std::make_unique<LlscRegistrationSignal>(m);
       }},
  };
}

void expect_same_history(const History& a, const History& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const StepRecord& x = a.records()[i];
    const StepRecord& y = b.records()[i];
    ASSERT_EQ(x.proc, y.proc) << "step " << i;
    ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind)) << i;
    if (x.kind == StepRecord::Kind::kMemOp) {
      ASSERT_EQ(static_cast<int>(x.op.type), static_cast<int>(y.op.type)) << i;
      ASSERT_EQ(x.op.var, y.op.var) << i;
      ASSERT_EQ(x.outcome.result, y.outcome.result) << i;
      ASSERT_EQ(x.outcome.rmr, y.outcome.rmr) << i;
      ASSERT_EQ(x.outcome.nontrivial, y.outcome.nontrivial) << i;
    } else {
      ASSERT_EQ(x.code, y.code) << i;
      ASSERT_EQ(x.value, y.value) << i;
    }
    ASSERT_EQ(x.terminated_after, y.terminated_after) << i;
  }
}

TEST(Determinism, SameScheduleSameHistoryForEveryAlgorithm) {
  const int n_waiters = 4;
  const int nprocs = n_waiters + 1;
  for (const auto& [label, factory] : algorithms(nprocs)) {
    SCOPED_TRACE(label);
    SignalingWorkloadOptions opt;
    opt.n_waiters = n_waiters;
    opt.scheduler_seed = 777;
    auto first = run_signaling_workload(make_dsm(nprocs), factory, opt);
    // Replay the recorded schedule on a fresh world.
    auto mem = make_dsm(nprocs);
    auto alg = factory(*mem);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a](ProcCtx& ctx) { return polling_waiter(ctx, a, 1'000'000); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    Simulation replay(*mem, std::move(programs));
    ScriptedScheduler script(first.sim->schedule());
    replay.run(script, 100'000'000);
    expect_same_history(first.sim->history(), replay.history());
  }
}

TEST(ErasureEquivalence, InPlaceEraseMatchesFilteredReplayExactly) {
  // Ground truth for Lemma 6.7 as implemented: build a run, erase an
  // invisible process in place, and compare BOTH the history and the full
  // memory contents against a from-scratch replay of the filtered schedule.
  const int n_waiters = 5;
  const int nprocs = n_waiters + 1;
  const auto factory = [nprocs](SharedMemory& m) {
    return std::make_unique<DsmRegistrationSignal>(
        m, static_cast<ProcId>(nprocs - 1));
  };

  // Run waiters only (no signaler steps), bounded so the victim is still
  // active (mid-spin) and — waiters never read each other's writes here —
  // invisible when erased.
  const ProcId victim = 2;
  auto mem2 = make_dsm(nprocs);
  auto alg2 = factory(*mem2);
  std::vector<Program> programs2;
  SignalingAlgorithm* a2 = alg2.get();
  for (int i = 0; i < n_waiters; ++i) {
    const int polls = (i == victim) ? 1'000'000 : 3;
    programs2.emplace_back(
        [a2, polls](ProcCtx& ctx) { return polling_waiter(ctx, a2, polls); });
  }
  programs2.emplace_back(Program{});
  Simulation sim2(*mem2, std::move(programs2));
  RoundRobinScheduler rr2;
  sim2.run(rr2, 2'000);  // bounded: victim still active mid-spin
  ASSERT_FALSE(sim2.terminated(victim));
  const std::vector<ProcId> schedule = sim2.schedule();
  sim2.erase_process(victim);

  // Filtered replay from scratch.
  std::vector<ProcId> filtered;
  for (const ProcId p : schedule) {
    if (p != victim) filtered.push_back(p);
  }
  auto mem3 = make_dsm(nprocs);
  auto alg3 = factory(*mem3);
  std::vector<Program> programs3;
  SignalingAlgorithm* a3 = alg3.get();
  for (int i = 0; i < n_waiters; ++i) {
    const int polls = (i == victim) ? 1'000'000 : 3;
    programs3.emplace_back(
        [a3, polls](ProcCtx& ctx) { return polling_waiter(ctx, a3, polls); });
  }
  programs3.emplace_back(Program{});
  Simulation sim3(*mem3, std::move(programs3));
  ScriptedScheduler script(filtered);
  sim3.run(script, 1'000'000);

  expect_same_history(sim2.history(), sim3.history());
  ASSERT_EQ(mem2->store().num_vars(), mem3->store().num_vars());
  for (VarId v = 0; v < mem2->store().num_vars(); ++v) {
    EXPECT_EQ(mem2->store().value(v), mem3->store().value(v)) << "var " << v;
    EXPECT_EQ(mem2->store().last_writer(v), mem3->store().last_writer(v))
        << "var " << v;
  }
  EXPECT_EQ(mem2->ledger().total_rmrs(), mem3->ledger().total_rmrs());
}

TEST(CostModelTransparency, ValuesIdenticalUnderEveryModel) {
  // Pricing must never leak into semantics: the same schedule produces the
  // same VALUES (results, call returns) under DSM and every CC policy.
  const int n_waiters = 4;
  const int nprocs = n_waiters + 1;
  const auto factory = [](SharedMemory& m) {
    return std::make_unique<DsmQueueSignal>(m);
  };
  SignalingWorkloadOptions opt;
  opt.n_waiters = n_waiters;
  opt.scheduler_seed = 4242;
  auto base = run_signaling_workload(make_dsm(nprocs), factory, opt);

  for (const CcPolicy policy :
       {CcPolicy::kWriteThrough, CcPolicy::kWriteBack, CcPolicy::kMesi,
        CcPolicy::kLfcu}) {
    auto mem = make_cc(nprocs, policy);
    auto alg = factory(*mem);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a](ProcCtx& ctx) { return polling_waiter(ctx, a, 1'000'000); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    Simulation replay(*mem, std::move(programs));
    ScriptedScheduler script(base.sim->schedule());
    replay.run(script, 100'000'000);
    const auto& a_rec = base.sim->history().records();
    const auto& b_rec = replay.history().records();
    ASSERT_EQ(a_rec.size(), b_rec.size());
    for (std::size_t i = 0; i < a_rec.size(); ++i) {
      ASSERT_EQ(a_rec[i].proc, b_rec[i].proc);
      if (a_rec[i].kind == StepRecord::Kind::kMemOp) {
        ASSERT_EQ(a_rec[i].outcome.result, b_rec[i].outcome.result)
            << "step " << i << " under " << to_string(policy);
      } else {
        ASSERT_EQ(a_rec[i].value, b_rec[i].value) << "step " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Crash/erasure interaction. Erasure (Lemma 6.7) removes a process from the
// execution as if it never ran; a crash is the opposite — a permanent,
// visible event. The two must refuse to compose, and crashy schedules must
// replay only together with their fault trace.
// ---------------------------------------------------------------------------

/// Waiters-only world (as in ErasureEquivalence): victim mid-spin, erasable.
struct ErasableRun {
  std::unique_ptr<SharedMemory> mem;
  std::unique_ptr<SignalingAlgorithm> alg;
  std::unique_ptr<Simulation> sim;
};

ErasableRun make_erasable_run(int n_waiters, ProcId victim) {
  const int nprocs = n_waiters + 1;
  ErasableRun r;
  r.mem = make_dsm(nprocs);
  r.alg = std::make_unique<DsmRegistrationSignal>(
      *r.mem, static_cast<ProcId>(nprocs - 1));
  std::vector<Program> programs;
  SignalingAlgorithm* a = r.alg.get();
  for (int i = 0; i < n_waiters; ++i) {
    const int polls = (i == victim) ? 1'000'000 : 3;
    programs.emplace_back(
        [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
  }
  programs.emplace_back(Program{});
  r.sim = std::make_unique<Simulation>(*r.mem, std::move(programs));
  RoundRobinScheduler rr;
  r.sim->run(rr, 2'000);
  return r;
}

TEST(CrashEraseInteraction, ErasingACrashedProcessThrows) {
  // A crash leaves permanent marks (kCrash history record, fault trace
  // entry) that erasure cannot revert; Lemma 6.7 erases live invisible
  // processes only.
  auto r = make_erasable_run(5, 2);
  ASSERT_FALSE(r.sim->terminated(2));
  r.sim->crash(2);
  EXPECT_THROW(r.sim->erase_process(2), std::logic_error);
}

TEST(CrashEraseInteraction, CrashingAnErasedProcessThrows) {
  // The erased process never existed, so there is nothing left to crash.
  auto r = make_erasable_run(5, 2);
  ASSERT_FALSE(r.sim->terminated(2));
  r.sim->erase_process(2);
  EXPECT_THROW(r.sim->crash(2), std::logic_error);
}

TEST(CrashEraseInteraction, PlainReplayOfACrashyScheduleFailsLoudly) {
  // A schedule recorded from a crashy run is meaningless without its fault
  // trace: replayed crash-free, the victim does not re-execute, terminates
  // early, and the ScriptedScheduler must throw rather than diverge
  // silently.
  const auto make = [](std::unique_ptr<SharedMemory>* mem_out) {
    auto mem = make_dsm(2);
    const VarId x = mem->allocate_global(0, "x");
    std::vector<Program> programs;
    programs.emplace_back([x](ProcCtx& ctx) -> ProcTask {
      for (int i = 0; i < 3; ++i) co_await ctx.read(x);
    });
    programs.emplace_back([x](ProcCtx& ctx) -> ProcTask {
      for (int i = 0; i < 6; ++i) co_await ctx.read(x);
    });
    *mem_out = std::move(mem);
    return programs;
  };
  std::unique_ptr<SharedMemory> mem1;
  auto programs1 = make(&mem1);
  Simulation crashy(*mem1, std::move(programs1));
  crashy.step(0);     // first read applied
  crashy.crash(0);    // locals (the loop counter) lost
  crashy.recover(0);  // re-runs from the top: three more reads needed
  RoundRobinScheduler rr;
  crashy.run(rr, 100);
  ASSERT_TRUE(crashy.terminated(0));
  // Proc 0 took 4 steps total: 1 pre-crash + 3 re-executed.
  int victim_steps = 0;
  for (const ProcId p : crashy.schedule()) victim_steps += (p == 0) ? 1 : 0;
  ASSERT_EQ(victim_steps, 4);

  std::unique_ptr<SharedMemory> mem2;
  auto programs2 = make(&mem2);
  Simulation replay(*mem2, std::move(programs2));
  ScriptedScheduler script(crashy.schedule());
  EXPECT_THROW(replay.run(script, 100), std::logic_error)
      << "crash-free replay finishes proc 0 after 3 steps; its 4th scripted "
         "step must fail";
}

TEST(CrashEraseInteraction, SchedulePlusFaultTraceReplaysExactly) {
  // The positive half: the same schedule under FaultPlan::scripted_trace
  // reproduces the crashy history record for record.
  auto make = []() {
    auto mem = make_dsm(1);
    const VarId x = mem->allocate_global(0, "x");
    std::vector<Program> programs{[x](ProcCtx& ctx) -> ProcTask {
      for (int i = 0; i < 3; ++i) co_await ctx.read(x);
    }};
    return std::make_pair(std::move(mem),
                          std::move(programs));
  };
  auto [mem, programs] = make();
  Simulation sim(*mem, std::move(programs));
  sim.step(0);
  sim.crash(0);
  sim.recover(0);
  RoundRobinScheduler rr;
  sim.run(rr, 100);
  ASSERT_TRUE(sim.terminated(0));

  auto [mem2, programs2] = make();
  Simulation replay(*mem2, std::move(programs2));
  ScriptedScheduler script(sim.schedule());
  FaultScheduler faulty(script, FaultPlan::scripted_trace(sim.fault_trace()));
  replay.run(faulty, 100);
  expect_same_history(sim.history(), replay.history());
  ASSERT_EQ(replay.fault_trace().size(), sim.fault_trace().size());
  EXPECT_EQ(mem->ledger().total_rmrs(), mem2->ledger().total_rmrs());
}

// ---------------------------------------------------------------------------
// Checker unit cases on synthetic histories.
// ---------------------------------------------------------------------------

StepRecord event(ProcId p, EventKind e, Word code, Word value = 0) {
  StepRecord r;
  r.kind = StepRecord::Kind::kEvent;
  r.proc = p;
  r.event = e;
  r.code = code;
  r.value = value;
  return r;
}

TEST(CheckerUnits, TrueBeforeAnySignalBeganIsViolation) {
  History h;
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));
  h.append(event(0, EventKind::kCallEnd, calls::kPoll, 1));  // true!
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(1, EventKind::kCallEnd, calls::kSignal));
  EXPECT_TRUE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, TrueAfterSignalBeganButNotEndedIsLegal) {
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));
  h.append(event(0, EventKind::kCallEnd, calls::kPoll, 1));
  EXPECT_FALSE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, FalseOverlappingSignalIsLegal) {
  // Poll began before Signal completed: false is allowed.
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));
  h.append(event(1, EventKind::kCallEnd, calls::kSignal));
  h.append(event(0, EventKind::kCallEnd, calls::kPoll, 0));
  EXPECT_FALSE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, FalseStrictlyAfterCompletedSignalIsViolation) {
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(1, EventKind::kCallEnd, calls::kSignal));
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));
  h.append(event(0, EventKind::kCallEnd, calls::kPoll, 0));
  EXPECT_TRUE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, PendingCallsImposeNothing) {
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(1, EventKind::kCallEnd, calls::kSignal));
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));  // never ends
  EXPECT_FALSE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, BlockingWaitBeforeSignalIsViolation) {
  History h;
  h.append(event(0, EventKind::kCallBegin, calls::kWait));
  h.append(event(0, EventKind::kCallEnd, calls::kWait));
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  EXPECT_TRUE(check_blocking_spec(h).has_value());
}

TEST(CheckerUnits, WaitAfterSignalBeganIsLegal) {
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(0, EventKind::kCallBegin, calls::kWait));
  h.append(event(0, EventKind::kCallEnd, calls::kWait));
  EXPECT_FALSE(check_blocking_spec(h).has_value());
}

TEST(CheckerUnits, CrashAbandonsTheOpenCall) {
  // A Poll() cut down by a crash never returned, so it imposes nothing —
  // even though a Signal() completed before the victim's NEXT (re-executed)
  // Poll() began and returned true.
  History h;
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));
  h.append(event(0, EventKind::kCrash, 0));
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(1, EventKind::kCallEnd, calls::kSignal));
  h.append(event(0, EventKind::kRecover, 0));
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));
  h.append(event(0, EventKind::kCallEnd, calls::kPoll, 1));
  EXPECT_FALSE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, SignalOnceBudgetResetsAcrossACrash) {
  // RME re-execution: a signaler that crashed mid-Signal() legitimately
  // calls Signal() again after recovery...
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(1, EventKind::kCrash, 0));
  h.append(event(1, EventKind::kRecover, 0));
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(1, EventKind::kCallEnd, calls::kSignal));
  EXPECT_FALSE(check_signal_once(h).has_value());
  // ...but a second Signal() with no crash in between is still a violation.
  History bad;
  bad.append(event(1, EventKind::kCallBegin, calls::kSignal));
  bad.append(event(1, EventKind::kCallEnd, calls::kSignal));
  bad.append(event(1, EventKind::kCallBegin, calls::kSignal));
  EXPECT_TRUE(check_signal_once(bad).has_value());
}

}  // namespace
}  // namespace rmrsim
