// Cross-cutting property tests:
//  * determinism — same schedule => identical history, for every algorithm;
//  * erasure equivalence — in-place erasure (Lemma 6.7) produces exactly
//    the state and history of the erased-process-free replay;
//  * cost-model transparency — values computed by an algorithm are
//    identical under every cost model (pricing must never change
//    semantics);
//  * checker unit cases on synthetic histories.
#include <gtest/gtest.h>

#include <memory>

#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "sched/schedulers.h"
#include "signaling/cas_registration.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/llsc_registration.h"
#include "signaling/workload.h"

namespace rmrsim {
namespace {

using Factory = SignalingFactory;

std::vector<std::pair<const char*, Factory>> algorithms(int nprocs) {
  return {
      {"cc-flag",
       [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); }},
      {"dsm-registration",
       [nprocs](SharedMemory& m) {
         return std::make_unique<DsmRegistrationSignal>(
             m, static_cast<ProcId>(nprocs - 1));
       }},
      {"dsm-queue",
       [](SharedMemory& m) { return std::make_unique<DsmQueueSignal>(m); }},
      {"cas-registration",
       [](SharedMemory& m) {
         return std::make_unique<CasRegistrationSignal>(m);
       }},
      {"llsc-registration",
       [](SharedMemory& m) {
         return std::make_unique<LlscRegistrationSignal>(m);
       }},
  };
}

void expect_same_history(const History& a, const History& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const StepRecord& x = a.records()[i];
    const StepRecord& y = b.records()[i];
    ASSERT_EQ(x.proc, y.proc) << "step " << i;
    ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind)) << i;
    if (x.kind == StepRecord::Kind::kMemOp) {
      ASSERT_EQ(static_cast<int>(x.op.type), static_cast<int>(y.op.type)) << i;
      ASSERT_EQ(x.op.var, y.op.var) << i;
      ASSERT_EQ(x.outcome.result, y.outcome.result) << i;
      ASSERT_EQ(x.outcome.rmr, y.outcome.rmr) << i;
      ASSERT_EQ(x.outcome.nontrivial, y.outcome.nontrivial) << i;
    } else {
      ASSERT_EQ(x.code, y.code) << i;
      ASSERT_EQ(x.value, y.value) << i;
    }
    ASSERT_EQ(x.terminated_after, y.terminated_after) << i;
  }
}

TEST(Determinism, SameScheduleSameHistoryForEveryAlgorithm) {
  const int n_waiters = 4;
  const int nprocs = n_waiters + 1;
  for (const auto& [label, factory] : algorithms(nprocs)) {
    SCOPED_TRACE(label);
    SignalingWorkloadOptions opt;
    opt.n_waiters = n_waiters;
    opt.scheduler_seed = 777;
    auto first = run_signaling_workload(make_dsm(nprocs), factory, opt);
    // Replay the recorded schedule on a fresh world.
    auto mem = make_dsm(nprocs);
    auto alg = factory(*mem);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a](ProcCtx& ctx) { return polling_waiter(ctx, a, 1'000'000); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    Simulation replay(*mem, std::move(programs));
    ScriptedScheduler script(first.sim->schedule());
    replay.run(script, 100'000'000);
    expect_same_history(first.sim->history(), replay.history());
  }
}

TEST(ErasureEquivalence, InPlaceEraseMatchesFilteredReplayExactly) {
  // Ground truth for Lemma 6.7 as implemented: build a run, erase an
  // invisible process in place, and compare BOTH the history and the full
  // memory contents against a from-scratch replay of the filtered schedule.
  const int n_waiters = 5;
  const int nprocs = n_waiters + 1;
  const auto factory = [nprocs](SharedMemory& m) {
    return std::make_unique<DsmRegistrationSignal>(
        m, static_cast<ProcId>(nprocs - 1));
  };

  // Run waiters only (no signaler steps), bounded so the victim is still
  // active (mid-spin) and — waiters never read each other's writes here —
  // invisible when erased.
  const ProcId victim = 2;
  auto mem2 = make_dsm(nprocs);
  auto alg2 = factory(*mem2);
  std::vector<Program> programs2;
  SignalingAlgorithm* a2 = alg2.get();
  for (int i = 0; i < n_waiters; ++i) {
    const int polls = (i == victim) ? 1'000'000 : 3;
    programs2.emplace_back(
        [a2, polls](ProcCtx& ctx) { return polling_waiter(ctx, a2, polls); });
  }
  programs2.emplace_back(Program{});
  Simulation sim2(*mem2, std::move(programs2));
  RoundRobinScheduler rr2;
  sim2.run(rr2, 2'000);  // bounded: victim still active mid-spin
  ASSERT_FALSE(sim2.terminated(victim));
  const std::vector<ProcId> schedule = sim2.schedule();
  sim2.erase_process(victim);

  // Filtered replay from scratch.
  std::vector<ProcId> filtered;
  for (const ProcId p : schedule) {
    if (p != victim) filtered.push_back(p);
  }
  auto mem3 = make_dsm(nprocs);
  auto alg3 = factory(*mem3);
  std::vector<Program> programs3;
  SignalingAlgorithm* a3 = alg3.get();
  for (int i = 0; i < n_waiters; ++i) {
    const int polls = (i == victim) ? 1'000'000 : 3;
    programs3.emplace_back(
        [a3, polls](ProcCtx& ctx) { return polling_waiter(ctx, a3, polls); });
  }
  programs3.emplace_back(Program{});
  Simulation sim3(*mem3, std::move(programs3));
  ScriptedScheduler script(filtered);
  sim3.run(script, 1'000'000);

  expect_same_history(sim2.history(), sim3.history());
  ASSERT_EQ(mem2->store().num_vars(), mem3->store().num_vars());
  for (VarId v = 0; v < mem2->store().num_vars(); ++v) {
    EXPECT_EQ(mem2->store().value(v), mem3->store().value(v)) << "var " << v;
    EXPECT_EQ(mem2->store().last_writer(v), mem3->store().last_writer(v))
        << "var " << v;
  }
  EXPECT_EQ(mem2->ledger().total_rmrs(), mem3->ledger().total_rmrs());
}

TEST(CostModelTransparency, ValuesIdenticalUnderEveryModel) {
  // Pricing must never leak into semantics: the same schedule produces the
  // same VALUES (results, call returns) under DSM and every CC policy.
  const int n_waiters = 4;
  const int nprocs = n_waiters + 1;
  const auto factory = [](SharedMemory& m) {
    return std::make_unique<DsmQueueSignal>(m);
  };
  SignalingWorkloadOptions opt;
  opt.n_waiters = n_waiters;
  opt.scheduler_seed = 4242;
  auto base = run_signaling_workload(make_dsm(nprocs), factory, opt);

  for (const CcPolicy policy :
       {CcPolicy::kWriteThrough, CcPolicy::kWriteBack, CcPolicy::kMesi,
        CcPolicy::kLfcu}) {
    auto mem = make_cc(nprocs, policy);
    auto alg = factory(*mem);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a](ProcCtx& ctx) { return polling_waiter(ctx, a, 1'000'000); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    Simulation replay(*mem, std::move(programs));
    ScriptedScheduler script(base.sim->schedule());
    replay.run(script, 100'000'000);
    const auto& a_rec = base.sim->history().records();
    const auto& b_rec = replay.history().records();
    ASSERT_EQ(a_rec.size(), b_rec.size());
    for (std::size_t i = 0; i < a_rec.size(); ++i) {
      ASSERT_EQ(a_rec[i].proc, b_rec[i].proc);
      if (a_rec[i].kind == StepRecord::Kind::kMemOp) {
        ASSERT_EQ(a_rec[i].outcome.result, b_rec[i].outcome.result)
            << "step " << i << " under " << to_string(policy);
      } else {
        ASSERT_EQ(a_rec[i].value, b_rec[i].value) << "step " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Checker unit cases on synthetic histories.
// ---------------------------------------------------------------------------

StepRecord event(ProcId p, EventKind e, Word code, Word value = 0) {
  StepRecord r;
  r.kind = StepRecord::Kind::kEvent;
  r.proc = p;
  r.event = e;
  r.code = code;
  r.value = value;
  return r;
}

TEST(CheckerUnits, TrueBeforeAnySignalBeganIsViolation) {
  History h;
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));
  h.append(event(0, EventKind::kCallEnd, calls::kPoll, 1));  // true!
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(1, EventKind::kCallEnd, calls::kSignal));
  EXPECT_TRUE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, TrueAfterSignalBeganButNotEndedIsLegal) {
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));
  h.append(event(0, EventKind::kCallEnd, calls::kPoll, 1));
  EXPECT_FALSE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, FalseOverlappingSignalIsLegal) {
  // Poll began before Signal completed: false is allowed.
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));
  h.append(event(1, EventKind::kCallEnd, calls::kSignal));
  h.append(event(0, EventKind::kCallEnd, calls::kPoll, 0));
  EXPECT_FALSE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, FalseStrictlyAfterCompletedSignalIsViolation) {
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(1, EventKind::kCallEnd, calls::kSignal));
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));
  h.append(event(0, EventKind::kCallEnd, calls::kPoll, 0));
  EXPECT_TRUE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, PendingCallsImposeNothing) {
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(1, EventKind::kCallEnd, calls::kSignal));
  h.append(event(0, EventKind::kCallBegin, calls::kPoll));  // never ends
  EXPECT_FALSE(check_polling_spec(h).has_value());
}

TEST(CheckerUnits, BlockingWaitBeforeSignalIsViolation) {
  History h;
  h.append(event(0, EventKind::kCallBegin, calls::kWait));
  h.append(event(0, EventKind::kCallEnd, calls::kWait));
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  EXPECT_TRUE(check_blocking_spec(h).has_value());
}

TEST(CheckerUnits, WaitAfterSignalBeganIsLegal) {
  History h;
  h.append(event(1, EventKind::kCallBegin, calls::kSignal));
  h.append(event(0, EventKind::kCallBegin, calls::kWait));
  h.append(event(0, EventKind::kCallEnd, calls::kWait));
  EXPECT_FALSE(check_blocking_spec(h).has_value());
}

}  // namespace
}  // namespace rmrsim
