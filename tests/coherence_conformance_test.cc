// Conformance tests for the coherence-protocol fleet: every row is one
// (state, event) probe against a state machine prepared by a short access
// prelude, checking the full transition contract — resulting per-processor
// states, message deltas (transfers / invalidations / updates), and the
// exact cycle charge under the default CycleCosts table (memory fetch 100,
// cache transfer 12, bus signal / update 2, write-back 100). A failing row
// names the protocol, the prelude, and the probe, localizing a transition
// bug to a single arc of the protocol's diagram.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "coherence/cache_controller.h"
#include "coherence/fleet.h"

namespace rmrsim {
namespace {

constexpr int kProcs = 4;
constexpr VarId kVar = 0;

// One transition probe. Accesses are tokens "R<p>" (read), "W<p>" (write),
// "X<p>" (crash of processor p); `expected` is the per-processor state of
// kVar after the probe, space-separated ("M I I I"). The message and cycle
// fields are deltas attributable to the probe alone.
struct Arc {
  const char* prelude;
  const char* probe;
  const char* expected;
  std::uint64_t transfers;
  std::uint64_t invalidations;
  std::uint64_t updates;
  std::uint64_t cycles;
};

void apply_token(SnoopingCache& cache, const std::string& tok) {
  ASSERT_EQ(tok.size(), 2u) << "bad access token: " << tok;
  const ProcId p = tok[1] - '0';
  ASSERT_TRUE(p >= 0 && p < kProcs) << "bad processor in token: " << tok;
  if (tok[0] == 'X') {
    cache.on_crash(p);
    return;
  }
  ASSERT_TRUE(tok[0] == 'R' || tok[0] == 'W') << "bad op in token: " << tok;
  cache.access(p, kVar, /*write=*/tok[0] == 'W');
}

std::string state_string(const SnoopingCache& cache) {
  std::string out;
  for (ProcId p = 0; p < kProcs; ++p) {
    if (p != 0) out += ' ';
    out += std::string(to_string(cache.state(p, kVar)));
  }
  return out;
}

void run_arc(const std::string& protocol, const Arc& arc) {
  SCOPED_TRACE(protocol + ": [" + arc.prelude + "] probe " + arc.probe);
  std::unique_ptr<SnoopingCache> cache = make_protocol(protocol, kProcs);
  ASSERT_NE(cache, nullptr);

  std::istringstream pre(arc.prelude);
  std::string tok;
  while (pre >> tok) {
    apply_token(*cache, tok);
    const auto viol = cache->check_invariants();
    ASSERT_FALSE(viol.has_value()) << "prelude violation: " << *viol;
  }

  const std::uint64_t t0 = cache->transfer_messages();
  const std::uint64_t i0 = cache->invalidation_messages();
  const std::uint64_t u0 = cache->update_messages();
  const std::uint64_t c0 = cache->total_cycles();
  apply_token(*cache, arc.probe);

  const auto viol = cache->check_invariants();
  EXPECT_FALSE(viol.has_value()) << "probe violation: " << *viol;
  EXPECT_EQ(state_string(*cache), arc.expected);
  EXPECT_EQ(cache->transfer_messages() - t0, arc.transfers) << "transfers";
  EXPECT_EQ(cache->invalidation_messages() - i0, arc.invalidations)
      << "invalidations";
  EXPECT_EQ(cache->update_messages() - u0, arc.updates) << "updates";
  EXPECT_EQ(cache->total_cycles() - c0, arc.cycles) << "cycles";
}

void run_table(const std::string& protocol, const std::vector<Arc>& table) {
  for (const Arc& arc : table) run_arc(protocol, arc);
}

TEST(CoherenceConformance, MesiTransitionTable) {
  run_table("mesi", {
      // Cold fills.
      {"", "R0", "E I I I", 1, 0, 0, 100},
      {"", "W0", "M I I I", 1, 0, 0, 100},
      // Clean sharing (Illinois): E or S holder supplies cache-to-cache.
      {"R1", "R0", "S S I I", 1, 0, 0, 12},
      {"R1 R2", "R0", "S S S I", 1, 0, 0, 12},
      // Read miss against a Modified owner: transfer + forced write-back
      // (S is a clean state in MESI) — the cost MOESI's O state avoids.
      {"W1", "R0", "S S I I", 1, 0, 0, 112},
      // Hits are free.
      {"W0", "W0", "M I I I", 0, 0, 0, 0},
      {"W0", "R0", "M I I I", 0, 0, 0, 0},
      // The silent E -> M upgrade: sole clean holder, no bus transaction.
      {"R0", "W0", "M I I I", 0, 0, 0, 0},
      // BusUpgr from S: address-only signal, one invalidation per copy.
      {"R1 R0", "W0", "M I I I", 0, 1, 0, 2},
      // Write miss (BusRdX): one fill transfer + invalidate every copy.
      {"R1 R2 R3", "W0", "M I I I", 1, 3, 0, 12},
      {"W1", "W0", "M I I I", 1, 1, 0, 12},
      // Crash of a dirty owner flushes the line (memory becomes current,
      // zero cycles charged), so the next fill is a cold E from memory.
      {"W1 X1", "R0", "E I I I", 1, 0, 0, 100},
      // Crash of one sharer leaves the other supplying the fill.
      {"R1 R2 X1", "W0", "M I I I", 1, 1, 0, 12},
  });
}

TEST(CoherenceConformance, MesifTransitionTable) {
  run_table("mesif", {
      // Cold fill takes E, just like MESI.
      {"", "R0", "E I I I", 1, 0, 0, 100},
      // A read miss served cache-to-cache hands the requester F: the E,
      // M, or F holder responds and demotes to plain S.
      {"R1", "R0", "F S I I", 1, 0, 0, 12},
      {"R1 R2", "R0", "F S S I", 1, 0, 0, 12},
      {"W1", "R0", "F S I I", 1, 0, 0, 112},
      // The F holder crashed leaving only plain S copies: nobody responds,
      // memory supplies (same transfer count as MESI, 100 cycles not 12)
      // and the requester picks up forwarding duty.
      {"R1 R2 X2", "R0", "F S I I", 1, 0, 0, 100},
      // F writes like S: BusUpgr + invalidations.
      {"R1 R0", "W0", "M I I I", 0, 1, 0, 2},
      // Silent E -> M upgrade survives in MESIF.
      {"R0", "W0", "M I I I", 0, 0, 0, 0},
      // Write miss invalidates S and F copies alike.
      {"R1 R2", "W3", "I I I M", 1, 2, 0, 12},
  });
}

TEST(CoherenceConformance, MoesiTransitionTable) {
  run_table("moesi", {
      {"", "R0", "E I I I", 1, 0, 0, 100},
      {"R0", "W0", "M I I I", 0, 0, 0, 0},
      // The defining MOESI arc: a snooped read demotes M to O with NO
      // write-back — compare the MESI row that charges 112 here.
      {"W1", "R0", "S O I I", 1, 0, 0, 12},
      // The O holder is the designated responder and stays O.
      {"W1 R0", "R2", "S O S I", 1, 0, 0, 12},
      // A sharer upgrading invalidates the O copy too.
      {"W1 R0", "W0", "M I I I", 0, 1, 0, 2},
      // O reclaims exclusivity with an address-only upgrade.
      {"W0 R1", "W0", "M I I I", 0, 1, 0, 2},
      // A crashing O holder flushes; the surviving S copy supplies.
      {"W1 R0 X1", "R2", "S I S I", 1, 0, 0, 12},
      {"W1 X1", "R0", "E I I I", 1, 0, 0, 100},
  });
}

TEST(CoherenceConformance, DragonTransitionTable) {
  run_table("dragon", {
      {"", "R0", "E I I I", 1, 0, 0, 100},
      {"", "W0", "M I I I", 1, 0, 0, 100},
      {"R0", "W0", "M I I I", 0, 0, 0, 0},
      // Read misses demote the sole holder: E -> Sc, M -> Sm (keeps
      // update-ownership, dirty, no flush).
      {"R1", "R0", "Sc Sc I I", 1, 0, 0, 12},
      {"W1", "R0", "Sc Sm I I", 1, 0, 0, 12},
      // The defining Dragon arc: a shared write broadcasts the new word
      // (one update message per remote copy) instead of invalidating.
      {"R1 R0", "W0", "Sm Sc I I", 0, 0, 1, 2},
      // The previous update-owner demotes to Sc; the writer takes Sm.
      {"W1 R0", "W0", "Sm Sc I I", 0, 0, 1, 2},
      {"W0 R1", "W1", "Sc Sm I I", 0, 0, 1, 2},
      // Write miss with sharers: fill + update in one transaction.
      {"R1", "W0", "Sm Sc I I", 1, 0, 1, 14},
      // A shared write that finds nobody listening takes M: the bus
      // update transaction still runs (2 cycles) but carries 0 messages,
      // and future writes go silent.
      {"R1 R0 X1", "W0", "M I I I", 0, 0, 0, 2},
      // Dirty crash flushes, cold refill takes E.
      {"W1 X1", "R0", "E I I I", 1, 0, 0, 100},
  });
}

// Dragon never invalidates: across every row of its table (and any trace),
// invalidation_messages stays 0. Conversely the invalidation protocols
// never send updates. Checked here as a table-wide sweep so a future edit
// cannot quietly route a transition through the wrong message class.
TEST(CoherenceConformance, MessageClassesAreProtocolDisjoint) {
  const char* trace[] = {"R1", "W0", "R2", "W3", "R0", "W1", "X1", "W2"};
  for (const std::string& proto : protocol_names()) {
    std::unique_ptr<SnoopingCache> cache = make_protocol(proto, kProcs);
    for (const char* tok : trace) apply_token(*cache, tok);
    if (proto == "dragon") {
      EXPECT_EQ(cache->invalidation_messages(), 0u) << proto;
      EXPECT_GT(cache->update_messages(), 0u) << proto;
    } else {
      EXPECT_EQ(cache->update_messages(), 0u) << proto;
      EXPECT_GT(cache->invalidation_messages(), 0u) << proto;
      // Snooping caches only invalidate copies that exist.
      EXPECT_EQ(cache->superfluous_invalidations(), 0u) << proto;
    }
    const auto viol = cache->check_invariants();
    EXPECT_FALSE(viol.has_value()) << proto << ": " << *viol;
  }
}

// The opt-in per-event cycle log records exactly the cycles each injected
// access charged, in order — the raw material for per-call attribution.
TEST(CoherenceConformance, CycleLogRecordsPerEventCharges) {
  std::unique_ptr<SnoopingCache> cache = make_protocol("mesi", kProcs);
  cache->enable_cycle_log();
  cache->access(0, kVar, /*write=*/false);  // cold fill: memory fetch
  cache->access(1, kVar, /*write=*/false);  // clean share: cache transfer
  cache->access(1, kVar, /*write=*/true);   // BusUpgr from S
  cache->access(1, kVar, /*write=*/false);  // M hit
  const std::vector<std::uint64_t> expected = {100, 12, 2, 0};
  EXPECT_EQ(cache->cycle_log(), expected);
}

// make_protocol rejects unknown names instead of guessing.
TEST(CoherenceConformance, UnknownProtocolNameYieldsNull) {
  EXPECT_EQ(make_protocol("mosi", kProcs), nullptr);
  EXPECT_EQ(make_protocol("", kProcs), nullptr);
}

}  // namespace
}  // namespace rmrsim
