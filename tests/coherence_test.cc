// Tests for the Section 8 interconnect-message accounting: RMRs are "at
// par" with messages on a broadcast bus, an ideal directory never sends
// superfluous invalidations (so messages track RMRs amortized), and a coarse
// directory broadcasts blindly (messages can exceed RMRs asymptotically).
#include <gtest/gtest.h>

#include "coherence/protocols.h"
#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "sched/schedulers.h"
#include "signaling/cc_flag.h"

namespace rmrsim {
namespace {

struct Counters {
  BusBroadcastCounter bus;
  IdealDirectoryCounter ideal;
  CoarseDirectoryCounter coarse;
  ListenerFanout fan;

  explicit Counters(int nprocs) : coarse(nprocs) {
    fan.add(&bus);
    fan.add(&ideal);
    fan.add(&coarse);
  }
};

TEST(Coherence, BusMessagesEqualRmrs) {
  const int n = 8;
  auto mem = make_cc(n);
  Counters c(n);
  mem->set_listener(&c.fan);
  const VarId v = mem->allocate_global(0);
  for (int round = 0; round < 5; ++round) {
    for (ProcId p = 0; p < n; ++p) mem->apply(p, MemOp::read(v));
    mem->apply(0, MemOp::write(v, round));
  }
  EXPECT_EQ(c.bus.transfer_messages(), mem->ledger().total_rmrs());
}

TEST(Coherence, IdealDirectoryInvalidatesOnlyRealCopies) {
  const int n = 8;
  auto mem = make_cc(n);
  Counters c(n);
  mem->set_listener(&c.fan);
  const VarId v = mem->allocate_global(0);
  // 3 readers cache v, then p0 writes: exactly 3 remote copies existed
  // (readers) — p0 had no copy, so 3 useful invalidations, 0 superfluous.
  for (ProcId p = 1; p <= 3; ++p) mem->apply(p, MemOp::read(v));
  mem->apply(0, MemOp::write(v, 1));
  EXPECT_EQ(c.ideal.invalidation_messages(), 3u);
  EXPECT_EQ(c.ideal.superfluous_invalidations(), 0u);
}

TEST(Coherence, CoarseDirectoryBroadcastsBlindly) {
  const int n = 16;
  auto mem = make_cc(n);
  Counters c(n);
  mem->set_listener(&c.fan);
  const VarId v = mem->allocate_global(0);
  // One reader caches v, then p0 writes. The coarse directory only knows
  // "someone may hold it" and blasts all N-1 others.
  mem->apply(1, MemOp::read(v));
  mem->apply(0, MemOp::write(v, 1));
  EXPECT_EQ(c.coarse.invalidation_messages(), static_cast<std::uint64_t>(n - 1));
  EXPECT_EQ(c.coarse.useful_invalidations(), 1u);
  EXPECT_EQ(c.coarse.superfluous_invalidations(),
            static_cast<std::uint64_t>(n - 2));
  // The ideal directory sent exactly one.
  EXPECT_EQ(c.ideal.invalidation_messages(), 1u);
}

TEST(Coherence, InvalidationsBoundedByRmrsUnderIdealDirectory) {
  // Section 8's key observation: a cached copy is invalidated at most once
  // and creating it took an RMR, so (ideal-directory) invalidations <= RMRs.
  const int n = 8;
  auto mem = make_cc(n);
  Counters c(n);
  mem->set_listener(&c.fan);
  const VarId a = mem->allocate_global(0);
  const VarId b = mem->allocate_global(0);
  SplitMix64 rng(2024);
  for (int step = 0; step < 2000; ++step) {
    const ProcId p = static_cast<ProcId>(rng.below(n));
    const VarId v = rng.chance(1, 2) ? a : b;
    if (rng.chance(1, 3)) {
      mem->apply(p, MemOp::write(v, static_cast<Word>(step)));
    } else {
      mem->apply(p, MemOp::read(v));
    }
  }
  EXPECT_LE(c.ideal.useful_invalidations(), mem->ledger().total_rmrs());
}

TEST(Coherence, SignalingWorkloadMessageExchangeRate) {
  // The paper's practical caveat (end of Section 8): under a coarse
  // directory, the broadcast write of the CC flag algorithm triggers ~N
  // messages although it is a single RMR, so amortized message complexity
  // exceeds amortized RMR complexity.
  const int n_waiters = 4;
  const int n_idle = 12;  // processors that never cache the flag
  const int nprocs = n_waiters + n_idle + 1;
  auto mem = make_cc(nprocs);
  Counters c(nprocs);
  mem->set_listener(&c.fan);
  CcFlagSignal alg(*mem);
  std::vector<Program> programs;
  for (int i = 0; i < n_waiters; ++i) {
    programs.emplace_back(
        [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 100'000); });
  }
  for (int i = 0; i < n_idle; ++i) programs.emplace_back(Program{});
  programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg, 4); });
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  ASSERT_TRUE(sim.run(rr, 10'000'000).all_terminated);

  // Bus: messages == RMRs ("at par").
  EXPECT_EQ(c.bus.transfer_messages(), mem->ledger().total_rmrs());
  // Coarse directory: the one flag write invalidated all N-1 caches.
  EXPECT_GE(c.coarse.invalidation_messages(),
            static_cast<std::uint64_t>(nprocs - 1));
  EXPECT_GT(c.coarse.superfluous_invalidations(), 0u);
  // Ideal directory: one invalidation per waiter copy that actually existed.
  EXPECT_LE(c.ideal.invalidation_messages(),
            static_cast<std::uint64_t>(n_waiters + 1));
}

TEST(Coherence, DsmHasNoRealInvalidationTraffic) {
  // In DSM (no caches, remote_copies_before always 0) an exact directory
  // never invalidates anything: "any RMR generates a fixed amount of
  // communication" (Section 8) — transfers only.
  const int n = 4;
  auto mem = make_dsm(n);
  Counters c(n);
  mem->set_listener(&c.fan);
  const VarId v = mem->allocate_global(0);
  for (ProcId p = 0; p < n; ++p) {
    mem->apply(p, MemOp::write(v, p));
    mem->apply(p, MemOp::read(v));
  }
  EXPECT_EQ(c.bus.transfer_messages(), mem->ledger().total_rmrs());
  EXPECT_EQ(c.ideal.invalidation_messages(), 0u);  // no copies ever exist
}

}  // namespace
}  // namespace rmrsim
