// Differential tests between the naive exhaustive explorer and the DPOR
// engine: on every seed configuration the two must agree on the verdict —
// violation found or not, and when found, the identical violation message.
// (The violating *schedules* may differ: DPOR reports the lex-least of the
// reduced tree, which the reduction guarantees is equivalent to, but not
// necessarily equal to, the naive one.)
//
// Also pinned here: parallel determinism (workers 1/2/4 produce
// bit-identical results), the reduction's node savings (>= 10x on a config
// both explorers exhaust), and a configuration the naive explorer cannot
// exhaust within its node budget but DPOR can.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "mutex/mcs_lock.h"
#include "mutex/simple_locks.h"
#include "signaling/broken.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_registration.h"
#include "signaling/dsm_single_waiter.h"
#include "verify/dpor.h"
#include "verify/explorer.h"

namespace rmrsim {
namespace {

// All builders here are thread-safe by construction: every call builds a
// fresh world and writes no shared state (required for workers > 1).
template <typename Alg, typename... Args>
ExploreBuilder signaling_builder(bool cc, int n_waiters, int polls,
                                 Args... args) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = cc ? make_cc(n_waiters + 1) : make_dsm(n_waiters + 1);
    auto alg = std::make_shared<Alg>(*inst.mem, args...);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreChecker polling_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h); v.has_value()) return v->what;
    return std::nullopt;
  };
}

// The occupancy-gauge mutex harness from explorer_test, with the gauge id
// precomputed instead of written through an out-parameter during build()
// (variable ids are allocation-ordered and the gauge is allocated first, so
// it is always VarId 0 — this keeps build() write-free and thread-safe).
constexpr VarId kGauge = 0;

ProcTask gauge_mutex_worker(ProcCtx& ctx, MutexAlgorithm* lock, VarId gauge,
                            int passages) {
  for (int i = 0; i < passages; ++i) {
    co_await lock->acquire(ctx);
    co_await ctx.faa(gauge, 1);
    co_await ctx.faa(gauge, -1);
    co_await lock->release(ctx);
  }
}

template <typename Lock>
ExploreBuilder gauge_mutex_builder(int nprocs, int passages) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(nprocs);
    const VarId gauge = inst.mem->allocate_global(0, "cs-gauge");
    EXPECT_EQ(gauge, kGauge);
    auto lock = std::make_shared<Lock>(*inst.mem);
    std::vector<Program> programs;
    MutexAlgorithm* l = lock.get();
    for (int i = 0; i < nprocs; ++i) {
      programs.emplace_back([l, gauge, passages](ProcCtx& ctx) {
        return gauge_mutex_worker(ctx, l, gauge, passages);
      });
    }
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = lock;
    return inst;
  };
}

ExploreChecker gauge_checker() {
  return [](const History& h) -> std::optional<std::string> {
    for (const StepRecord& r : h.records()) {
      if (r.kind == StepRecord::Kind::kMemOp && r.op.type == OpType::kFaa &&
          r.op.var == kGauge && r.op.arg0 == 1 && r.outcome.result != 0) {
        return "two processes inside the critical section (gauge=" +
               std::to_string(r.outcome.result + 1) + ")";
      }
    }
    return std::nullopt;
  };
}

class NoLock final : public MutexAlgorithm {
 public:
  explicit NoLock(SharedMemory&) {}
  SubTask<void> acquire(ProcCtx& ctx) override { co_await ctx.mark(0); }
  SubTask<void> release(ProcCtx& ctx) override { co_await ctx.mark(1); }
  std::string_view name() const override { return "no-lock"; }
};

// Runs both explorers and checks verdict equivalence. Returns the pair for
// further assertions.
struct Verdicts {
  ExploreResult naive;
  ExploreResult dpor;
};

Verdicts expect_same_verdict(const ExploreBuilder& build,
                             const ExploreChecker& check, int max_depth,
                             std::uint64_t max_nodes) {
  Verdicts v;
  v.naive = explore_all_schedules(build, check,
                                  {.max_depth = max_depth,
                                   .max_nodes = max_nodes});
  v.dpor = explore_dpor(build, check,
                        {.max_depth = max_depth, .max_nodes = max_nodes});
  EXPECT_EQ(v.naive.violation.has_value(), v.dpor.violation.has_value())
      << "naive: "
      << (v.naive.violation ? *v.naive.violation : std::string("clean"))
      << " | dpor: "
      << (v.dpor.violation ? *v.dpor.violation : std::string("clean"));
  if (v.naive.violation.has_value() && v.dpor.violation.has_value()) {
    EXPECT_EQ(*v.naive.violation, *v.dpor.violation);
  }
  return v;
}

TEST(ExplorerEquivalence, CcFlagBothModels) {
  for (const bool cc : {true, false}) {
    const Verdicts v = expect_same_verdict(
        signaling_builder<CcFlagSignal>(cc, 2, 2), polling_checker(), 16,
        500'000);
    EXPECT_FALSE(v.dpor.violation.has_value());
    EXPECT_TRUE(v.naive.exhausted);
    EXPECT_TRUE(v.dpor.exhausted);
    EXPECT_GT(v.dpor.complete_schedules, 0u);
  }
}

TEST(ExplorerEquivalence, RegistrationOneWaiter) {
  const Verdicts v = expect_same_verdict(
      signaling_builder<DsmRegistrationSignal>(false, 1, 2, ProcId{1}),
      polling_checker(), 24, 500'000);
  EXPECT_FALSE(v.dpor.violation.has_value());
  EXPECT_TRUE(v.dpor.exhausted);
}

TEST(ExplorerEquivalence, SingleWaiter) {
  const Verdicts v = expect_same_verdict(
      signaling_builder<DsmSingleWaiterSignal>(false, 1, 3),
      polling_checker(), 24, 500'000);
  EXPECT_FALSE(v.dpor.violation.has_value());
  EXPECT_TRUE(v.dpor.exhausted);
}

TEST(ExplorerEquivalence, BrokenLocalViolationAgrees) {
  const Verdicts v = expect_same_verdict(
      signaling_builder<BrokenLocalSignal>(false, 1, 1), polling_checker(),
      16, 100'000);
  ASSERT_TRUE(v.dpor.violation.has_value());
  EXPECT_FALSE(v.dpor.violating_schedule.empty());
}

TEST(ExplorerEquivalence, TasLockMutex) {
  const Verdicts v =
      expect_same_verdict(gauge_mutex_builder<TasLock>(2, 1),
                          gauge_checker(), 17, 2'000'000);
  EXPECT_FALSE(v.dpor.violation.has_value());
  EXPECT_TRUE(v.dpor.exhausted);
}

TEST(ExplorerEquivalence, McsLockMutex) {
  const Verdicts v =
      expect_same_verdict(gauge_mutex_builder<McsLock>(2, 1),
                          gauge_checker(), 18, 2'000'000);
  EXPECT_FALSE(v.dpor.violation.has_value());
  EXPECT_TRUE(v.dpor.exhausted);
}

TEST(ExplorerEquivalence, NoLockViolationAgrees) {
  const Verdicts v = expect_same_verdict(gauge_mutex_builder<NoLock>(2, 1),
                                         gauge_checker(), 12, 100'000);
  ASSERT_TRUE(v.dpor.violation.has_value());
}

// ---------------------------------------------------------------------------
// Reduction strength.
// ---------------------------------------------------------------------------

TEST(ExplorerEquivalence, DporVisitsTenfoldFewerNodes) {
  // A config both explorers exhaust: the reduction must pay for itself.
  // (Two waiters: with three processes the commuting pairs multiply and the
  // reduction clears 10x; the 2-process config manages only ~7x.)
  const auto build =
      signaling_builder<DsmRegistrationSignal>(false, 2, 1, ProcId{2});
  const auto naive = explore_all_schedules(
      build, polling_checker(), {.max_depth = 24, .max_nodes = 10'000'000});
  const auto dpor = explore_dpor(
      build, polling_checker(), {.max_depth = 24, .max_nodes = 10'000'000});
  ASSERT_TRUE(naive.exhausted);
  ASSERT_TRUE(dpor.exhausted);
  EXPECT_FALSE(dpor.violation.has_value());
  EXPECT_GE(naive.nodes_visited, 10 * dpor.nodes_visited)
      << "naive " << naive.nodes_visited << " vs dpor " << dpor.nodes_visited;
  EXPECT_GT(dpor.stats.sleep_set_prunes, 0u);
  EXPECT_GT(dpor.stats.naive_tree_estimate, 0.0);
}

TEST(ExplorerEquivalence, DporExhaustsWhereNaiveCannot) {
  // Three waiters + signaler (4 processes): the naive tree dwarfs a 2M-node
  // budget, the reduced one fits with room to spare.
  const auto build =
      signaling_builder<DsmRegistrationSignal>(false, 3, 1, ProcId{3});
  const auto naive = explore_all_schedules(
      build, polling_checker(), {.max_depth = 28, .max_nodes = 2'000'000});
  EXPECT_FALSE(naive.exhausted)
      << "naive explorer unexpectedly exhausted the 4-process tree in "
      << naive.nodes_visited << " nodes — deepen the config";
  const auto dpor = explore_dpor(
      build, polling_checker(), {.max_depth = 28, .max_nodes = 2'000'000});
  EXPECT_TRUE(dpor.exhausted)
      << "DPOR tripped the same node budget: " << dpor.nodes_visited;
  EXPECT_FALSE(dpor.violation.has_value());
  EXPECT_LT(dpor.nodes_visited, naive.nodes_visited);
}

// ---------------------------------------------------------------------------
// Parallel determinism: identical results for workers 1, 2, 4 — verdict,
// message, schedule, exhaustion, and node count alike.
// ---------------------------------------------------------------------------

void expect_worker_invariance(const ExploreBuilder& build,
                              const ExploreChecker& check,
                              DporOptions options) {
  options.workers = 1;
  const ExploreResult one = explore_dpor(build, check, options);
  ASSERT_TRUE(one.exhausted) << "config must fit the node budget for the "
                                "determinism contract to apply";
  for (const int workers : {2, 4}) {
    options.workers = workers;
    const ExploreResult many = explore_dpor(build, check, options);
    EXPECT_EQ(one.violation.has_value(), many.violation.has_value())
        << "workers=" << workers;
    if (one.violation.has_value() && many.violation.has_value()) {
      EXPECT_EQ(*one.violation, *many.violation) << "workers=" << workers;
    }
    EXPECT_EQ(one.violating_schedule, many.violating_schedule)
        << "workers=" << workers;
    EXPECT_TRUE(many.exhausted) << "workers=" << workers;
    EXPECT_EQ(one.nodes_visited, many.nodes_visited)
        << "workers=" << workers;
    EXPECT_EQ(one.complete_schedules, many.complete_schedules)
        << "workers=" << workers;
  }
}

TEST(ExplorerEquivalence, WorkersAgreeOnCleanConfig) {
  expect_worker_invariance(
      signaling_builder<DsmRegistrationSignal>(false, 2, 1, ProcId{2}),
      polling_checker(), {.max_depth = 24, .max_nodes = 10'000'000});
}

TEST(ExplorerEquivalence, WorkersAgreeOnViolatingConfig) {
  expect_worker_invariance(gauge_mutex_builder<NoLock>(3, 1),
                           gauge_checker(),
                           {.max_depth = 15, .max_nodes = 10'000'000});
}

}  // namespace
}  // namespace rmrsim
