// Tests for the harness subsystem: the asymptotic fitter, the canonical
// sweep grid, parallel-sweep determinism, the artifact writer, the drive.h
// factories, and reduced-size runs of the registered experiments (the same
// expectation gate CI enforces).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "coherence/fleet.h"
#include "common/fsio.h"
#include "harness/artifact.h"
#include "harness/drive.h"
#include "harness/experiments.h"
#include "harness/fitter.h"
#include "harness/sweep.h"
#include "memory/shared_memory.h"

namespace rmrsim {
namespace {

std::vector<double> xs_pow2(int count) {
  std::vector<double> xs;
  for (int i = 0; i < count; ++i) xs.push_back(std::pow(2.0, 3 + i));
  return xs;
}

TEST(Fitter, ClassifiesFlatSeriesConstant) {
  const auto xs = xs_pow2(6);
  const std::vector<double> ys(6, 2.0);
  const FitReport fit = fit_growth_class(xs, ys);
  EXPECT_EQ(fit.cls, GrowthClass::kConstant);
  EXPECT_NEAR(fit.loglog_slope, 0.0, 0.05);
  EXPECT_FALSE(is_super_constant(fit.cls));
}

TEST(Fitter, ClassifiesNoisyFlatSeriesConstant) {
  const auto xs = xs_pow2(6);
  const std::vector<double> ys = {2.0, 2.1, 1.9, 2.05, 1.95, 2.0};
  EXPECT_EQ(fit_growth_class(xs, ys).cls, GrowthClass::kConstant);
}

TEST(Fitter, ClassifiesLogSeriesLogarithmic) {
  const auto xs = xs_pow2(6);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(9.0 * std::log2(x));
  const FitReport fit = fit_growth_class(xs, ys);
  EXPECT_EQ(fit.cls, GrowthClass::kLogarithmic);
  EXPECT_TRUE(is_super_constant(fit.cls));
}

TEST(Fitter, ClassifiesLinearSeriesLinear) {
  const auto xs = xs_pow2(6);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 * x + 5.0);
  const FitReport fit = fit_growth_class(xs, ys);
  EXPECT_EQ(fit.cls, GrowthClass::kLinear);
  EXPECT_NEAR(fit.loglog_slope, 1.0, 0.15);
}

TEST(Fitter, SqrtSeriesIsSuperConstant) {
  // The fitter only has three shapes; sqrt must at least land in a
  // super-constant one (the Omega(W) reading).
  const auto xs = xs_pow2(6);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(std::sqrt(x));
  EXPECT_TRUE(is_super_constant(fit_growth_class(xs, ys).cls));
}

TEST(Fitter, DecreasingSeriesIsConstant) {
  // Bounded above by its first point: the amortized one-time-constant
  // shape (cycles per RMR with a single cold fetch) is O(1), not log.
  const auto xs = xs_pow2(5);
  const std::vector<double> ys = {40.0, 24.0, 16.0, 12.0, 10.0};
  EXPECT_EQ(fit_growth_class(xs, ys).cls, GrowthClass::kConstant);
}

TEST(Fitter, TwoPointDipIsNotCalledConstant) {
  // Two points cannot establish a decreasing trend: a single noisy dip
  // has a steeply negative log-log slope, and the decreasing-series rule
  // used to call it O(1) on that evidence alone, masking real growth.
  // With only the point-pair to go on, the fitter must keep a
  // super-constant reading rather than certify boundedness.
  const std::vector<double> xs = {8.0, 16.0};
  const std::vector<double> ys = {40.0, 16.0};
  const FitReport fit = fit_growth_class(xs, ys);
  EXPECT_LT(fit.loglog_slope, -0.10);
  EXPECT_NE(fit.cls, GrowthClass::kConstant);
}

TEST(Fitter, ThreePointDecreasingSeriesStillConstant) {
  // The minimum-evidence gate is 3 points: a genuinely decreasing
  // 3-point series keeps the O(1) classification.
  const std::vector<double> xs = {8.0, 16.0, 32.0};
  const std::vector<double> ys = {40.0, 24.0, 16.0};
  EXPECT_EQ(fit_growth_class(xs, ys).cls, GrowthClass::kConstant);
}

TEST(Fitter, RejectsDuplicateXs) {
  // A repeated-N grid passes std::is_sorted but double-weights the repeated
  // point and, when every x is equal, zeroes the least-squares denominator
  // deep inside the slope fit. The fitter's contract is strictly ascending
  // xs; duplicates must be rejected up front with its own message.
  const std::vector<double> dup_xs = {8, 8, 16};
  const std::vector<double> dup_ys = {8, 8, 16};
  EXPECT_THROW(fit_growth_class(dup_xs, dup_ys), std::logic_error);
  const std::vector<double> flat_xs = {16, 16};
  const std::vector<double> flat_ys = {1, 2};
  EXPECT_THROW(fit_growth_class(flat_xs, flat_ys), std::logic_error);
}

TEST(Fitter, ExpectationMatching) {
  EXPECT_TRUE(matches(Expectation::kO1, GrowthClass::kConstant));
  EXPECT_FALSE(matches(Expectation::kO1, GrowthClass::kLogarithmic));
  EXPECT_TRUE(matches(Expectation::kThetaLogN, GrowthClass::kLogarithmic));
  EXPECT_FALSE(matches(Expectation::kThetaLogN, GrowthClass::kLinear));
  EXPECT_TRUE(matches(Expectation::kThetaN, GrowthClass::kLinear));
  EXPECT_TRUE(matches(Expectation::kOmegaW, GrowthClass::kLogarithmic));
  EXPECT_TRUE(matches(Expectation::kOmegaW, GrowthClass::kLinear));
  EXPECT_FALSE(matches(Expectation::kOmegaW, GrowthClass::kConstant));
}

// ---- sweep grid ---------------------------------------------------------

SweepSpec two_by_everything_spec() {
  SweepSpec s;
  s.name = "t";
  s.models = {"dsm", "cc"};
  s.algorithms = {"a", "b"};
  s.ns = {8, 16};
  s.seeds = {0, 1};
  s.fault_plans = {"", "random:rate=0.01"};
  return s;
}

TEST(Sweep, CanonicalOrderIsAlgorithmMajorFaultPlanMinor) {
  const SweepSpec s = two_by_everything_spec();
  ASSERT_EQ(s.grid_size(), 32u);
  // First point: first value on every axis.
  const SweepPoint p0 = s.point_at(0);
  EXPECT_EQ(p0.algorithm, "a");
  EXPECT_EQ(p0.model, "dsm");
  EXPECT_EQ(p0.n, 8);
  EXPECT_EQ(p0.seed, 0u);
  EXPECT_EQ(p0.fault_plan, "");
  EXPECT_EQ(p0.index, 0u);
  // Fault plan is the minor axis.
  EXPECT_EQ(s.point_at(1).fault_plan, "random:rate=0.01");
  EXPECT_EQ(s.point_at(1).seed, 0u);
  // Then seeds.
  EXPECT_EQ(s.point_at(2).seed, 1u);
  // Then N.
  EXPECT_EQ(s.point_at(4).n, 16);
  // Then model.
  EXPECT_EQ(s.point_at(8).model, "cc");
  // Algorithm is the major axis: the second half of the grid is all "b".
  EXPECT_EQ(s.point_at(16).algorithm, "b");
  EXPECT_EQ(s.point_at(31).algorithm, "b");
  EXPECT_EQ(s.point_at(31).model, "cc");
  EXPECT_EQ(s.point_at(31).n, 16);
  EXPECT_EQ(s.point_at(31).seed, 1u);
  EXPECT_EQ(s.point_at(31).fault_plan, "random:rate=0.01");
}

TEST(Sweep, CappedAtDropsLargeNsButKeepsMinPoints) {
  SweepSpec s;
  s.ns = {2, 8, 32, 128, 512};
  const SweepSpec capped = s.capped_at(32);
  EXPECT_EQ(capped.ns, (std::vector<int>{2, 8, 32}));
  // Capping below the third-smallest still keeps three points for the
  // fitter.
  const SweepSpec tiny = s.capped_at(4);
  EXPECT_EQ(tiny.ns, (std::vector<int>{2, 8, 32}));
}

MetricsRegistry synthetic_runner(const SweepPoint& p) {
  MetricsRegistry reg;
  // Deterministic values derived from the point's coordinates.
  reg.set("cost", static_cast<double>(p.n) * (p.model == "cc" ? 1 : 2) +
                      static_cast<double>(p.seed));
  reg.add("points_run");
  reg.series_append("trace", p.index, static_cast<double>(p.n));
  return reg;
}

TEST(Sweep, ParallelMergeIsByteIdenticalAcrossWorkerCounts) {
  const SweepSpec s = two_by_everything_spec();
  BenchArtifact base;
  std::string serial_json;
  for (const int workers : {1, 2, 8}) {
    const SweepResult r = run_sweep(s, synthetic_runner, workers);
    ASSERT_EQ(r.points.size(), s.grid_size());
    BenchArtifact a;
    a.name = "t";
    a.git = "pinned";  // exclude environment from the comparison
    a.result = r;
    const std::string json = artifact_to_json(a, /*include_wall_time=*/false);
    if (workers == 1) {
      serial_json = json;
    } else {
      EXPECT_EQ(json, serial_json) << "workers=" << workers;
    }
  }
}

TEST(Sweep, ExtractSeriesAveragesSeedsAndSkipsMissingMetric) {
  SweepSpec s;
  s.models = {"dsm"};
  s.algorithms = {"a"};
  s.ns = {8, 16};
  s.seeds = {0, 2};
  const SweepResult r = run_sweep(s, synthetic_runner, 1);
  const ExtractedSeries es =
      extract_series(r, SeriesSelector{"cost", "dsm", "a"});
  ASSERT_EQ(es.xs, (std::vector<double>{8, 16}));
  // Mean over seeds {0, 2}: 2n + 1.
  EXPECT_DOUBLE_EQ(es.ys[0], 17.0);
  EXPECT_DOUBLE_EQ(es.ys[1], 33.0);
  const ExtractedSeries none =
      extract_series(r, SeriesSelector{"absent", "dsm", "a"});
  EXPECT_TRUE(none.xs.empty());
}

TEST(Sweep, ExtractSeriesDedupesRepeatedNs) {
  // A grid that lists the same N twice (doubling a point for extra samples)
  // must still extract one x per N — duplicate xs would flow into the
  // fitter, which rejects them.
  SweepSpec s;
  s.models = {"dsm"};
  s.algorithms = {"a"};
  s.ns = {8, 8, 16};
  const SweepResult r = run_sweep(s, synthetic_runner, 1);
  const ExtractedSeries es =
      extract_series(r, SeriesSelector{"cost", "dsm", "a"});
  ASSERT_EQ(es.xs, (std::vector<double>{8, 16}));
  // Both n=8 grid points carry the same measurement; the mean is unchanged.
  EXPECT_DOUBLE_EQ(es.ys[0], 16.0);
  EXPECT_DOUBLE_EQ(es.ys[1], 32.0);
  EXPECT_NO_THROW(fit_growth_class(es.xs, es.ys));
}

TEST(Sweep, FindPointMatchesAllAxes) {
  const SweepSpec s = two_by_everything_spec();
  const SweepResult r = run_sweep(s, synthetic_runner, 1);
  const SweepPointResult* pr = find_point(r, "cc", "b", 16);
  ASSERT_NE(pr, nullptr);
  EXPECT_EQ(pr->point.model, "cc");
  EXPECT_EQ(pr->point.algorithm, "b");
  EXPECT_EQ(pr->point.n, 16);
  EXPECT_EQ(pr->point.fault_plan, "");
  EXPECT_EQ(find_point(r, "cc", "nope", 16), nullptr);
  EXPECT_EQ(find_point(r, "cc", "b", 999), nullptr);
  const SweepPointResult* faulty =
      find_point(r, "dsm", "a", 8, "random:rate=0.01");
  ASSERT_NE(faulty, nullptr);
  EXPECT_EQ(faulty->point.fault_plan, "random:rate=0.01");
}

// ---- artifact writer ----------------------------------------------------

TEST(Artifact, JsonIsSchemaVersionedAndOmitsWallTimeOnRequest) {
  SweepSpec s;
  s.name = "unit";
  s.ns = {4};
  BenchArtifact a;
  a.name = "unit";
  a.title = "quote\" in title";
  a.generator = "harness_test";
  a.git = "pinned";
  a.result = run_sweep(s, synthetic_runner, 1);
  const std::string with_time = artifact_to_json(a, true);
  EXPECT_NE(with_time.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(with_time.find("\"wall_time_ms\":"), std::string::npos);
  EXPECT_NE(with_time.find("\"workers\":"), std::string::npos);
  EXPECT_NE(with_time.find("quote\\\" in title"), std::string::npos);
  const std::string no_time = artifact_to_json(a, false);
  EXPECT_EQ(no_time.find("wall_time_ms"), std::string::npos);
  EXPECT_EQ(no_time.find("\"workers\""), std::string::npos);
}

TEST(Artifact, GitDescribeHonorsEnvOverride) {
  ::setenv("RMRSIM_GIT_DESCRIBE", "v-test-override", 1);
  EXPECT_EQ(git_describe(), "v-test-override");
  ::unsetenv("RMRSIM_GIT_DESCRIBE");
}

TEST(Artifact, WriteIsAtomicAndLeavesNoTempFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("rmrsim-artifact-" + std::to_string(getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  SweepSpec s;
  s.name = "unit";
  s.ns = {4};
  BenchArtifact a;
  a.name = "unit";
  a.git = "pinned";
  a.result = run_sweep(s, synthetic_runner, 1);

  const std::string path = write_artifact(a, dir.string(), false);
  EXPECT_EQ(read_file(path).value_or(""), artifact_to_json(a, false));
  // The atomic-rename discipline must not leave its scratch file behind —
  // a stray .tmp would be picked up by directory-globbing consumers.
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().extension(), ".json") << e.path();
  }
  EXPECT_EQ(entries, 1u);

  // Overwrite in place: readers racing the rewrite see old or new bytes,
  // never a torn file; afterwards the content is the new version.
  a.git = "pinned-2";
  write_artifact(a, dir.string(), false);
  EXPECT_EQ(read_file(path).value_or(""), artifact_to_json(a, false));
  fs::remove_all(dir);
}

TEST(Artifact, WriteToMissingDirectoryFailsLoudly) {
  SweepSpec s;
  s.name = "unit";
  s.ns = {4};
  BenchArtifact a;
  a.name = "unit";
  a.result = run_sweep(s, synthetic_runner, 1);
  // No silent no-op (the old ofstream path wrote nothing and returned
  // success): an unwritable destination must throw with the errno text.
  EXPECT_THROW(write_artifact(a, "/nonexistent-rmrsim-dir/nope", false),
               std::exception);
}

// ---- drive.h factories --------------------------------------------------

TEST(Drive, ModelFactoryKnowsEveryCliName) {
  for (const char* name : {"dsm", "cc", "cc-wb", "cc-mesi", "cc-lfcu"}) {
    EXPECT_TRUE(is_model_name(name)) << name;
    EXPECT_NE(make_model_by_name(name, 4), nullptr) << name;
  }
  EXPECT_FALSE(is_model_name("numa"));
  EXPECT_THROW(make_model_by_name("numa", 4), std::logic_error);
}

TEST(Drive, LockFactoryValidatesEagerly) {
  for (const char* name : {"mcs", "ya", "anderson", "ticket", "tas", "clh",
                           "bakery", "peterson", "recoverable"}) {
    const LockFactory f = lock_factory_by_name(name);
    auto mem = make_dsm(2);
    EXPECT_NE(f(*mem), nullptr) << name;
  }
  EXPECT_THROW(lock_factory_by_name("spinlock-9000"), std::logic_error);
  EXPECT_THROW(make_signal_factory_by_name("nope", 1), std::logic_error);
}

TEST(Drive, MutexWorkloadRunsCleanUnderEachScheduler) {
  MutexRunOptions opt;
  opt.model = "dsm";
  opt.nprocs = 4;
  opt.passages = 2;
  opt.make_lock = lock_factory_by_name("mcs");
  // Round-robin (seed 0).
  MutexRunOutcome rr = run_mutex_workload(opt);
  EXPECT_TRUE(rr.completed);
  EXPECT_FALSE(rr.violation.has_value());
  EXPECT_EQ(rr.passages_done, 8);
  EXPECT_GT(rr.rmrs_per_passage, 0.0);
  // Random scheduler.
  opt.seed = 7;
  EXPECT_TRUE(run_mutex_workload(opt).completed);
  // Bounded-gap scheduler.
  opt.gap_delta = 8;
  EXPECT_TRUE(run_mutex_workload(opt).completed);
}

TEST(Drive, SeedSweepAggregates) {
  MutexRunOptions opt;
  opt.model = "cc";
  opt.nprocs = 3;
  opt.passages = 2;
  opt.gap_delta = 8;
  opt.max_steps = 10'000'000;
  opt.make_lock = lock_factory_by_name("ticket");
  const MutexSeedStats stats = run_mutex_seeds(opt, 1, 5);
  EXPECT_EQ(stats.runs, 5);
  EXPECT_EQ(stats.violations, 0);
  EXPECT_EQ(stats.incomplete, 0);
  EXPECT_GT(stats.mean_rmrs_per_passage, 0.0);
}

// ---- reduced experiment runs (the CI gate, in-process) ------------------

TEST(Experiments, RegistryHasAllNineAndLookupWorks) {
  // e1..e9, one e4_<protocol> replica per fleet protocol, and the two
  // trace-workload experiments (t1_synth, t1_scale).
  EXPECT_EQ(all_experiments().size(), 9u + protocol_names().size() + 2u);
  ASSERT_NE(find_experiment("e5"), nullptr);
  EXPECT_EQ(find_experiment("e5")->name, "e5");
  ASSERT_NE(find_experiment("t1_synth"), nullptr);
  ASSERT_NE(find_experiment("t1_scale"), nullptr);
  for (const std::string& proto : protocol_names()) {
    ASSERT_NE(find_experiment("e4_" + proto), nullptr);
    EXPECT_EQ(find_experiment("e4_" + proto)->spec.ns,
              find_experiment("e4")->spec.ns);
  }
  EXPECT_EQ(find_experiment("e99"), nullptr);
}

TEST(Experiments, ReducedE1MatchesPaperClasses) {
  ::setenv("RMRSIM_GIT_DESCRIBE", "test", 1);
  const BenchArtifact a =
      run_experiment(*find_experiment("e1"), 2, "harness_test", /*max_n=*/64);
  ::unsetenv("RMRSIM_GIT_DESCRIBE");
  EXPECT_TRUE(artifact_matches(a)) << render_fit_table(a);
  EXPECT_FALSE(render_fit_table(a).empty());
}

TEST(Experiments, ReducedE2ForcesTheSeparation) {
  const BenchArtifact a =
      run_experiment(*find_experiment("e2"), 2, "harness_test", /*max_n=*/64);
  EXPECT_TRUE(artifact_matches(a)) << render_fit_table(a);
}

TEST(Experiments, ReducedE5RecoversTheAnchors) {
  const BenchArtifact a =
      run_experiment(*find_experiment("e5"), 2, "harness_test", /*max_n=*/64);
  EXPECT_TRUE(artifact_matches(a)) << render_fit_table(a);
}

}  // namespace
}  // namespace rmrsim
