// Oracle-parity suite for the compiled step engine (runtime/bytecode.h).
//
// The coroutine runtime is the semantic reference; the bytecode engine must
// be observationally indistinguishable from it: under the same schedule,
// byte-identical histories, schedules, and RMR ledgers — across every
// lowered algorithm, every cost model, both history modes, crash/recovery,
// LL/SC, directive drivers, and world forking. Any divergence is an engine
// bug, never a tolerance.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "sched/schedulers.h"
#include "signaling/cas_registration.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/compile.h"
#include "signaling/dsm_fixed.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/dsm_single_waiter.h"
#include "signaling/llsc_registration.h"
#include "signaling/workload.h"
#include "verify/dpor.h"
#include "verify/explorer.h"

namespace rmrsim {
namespace {

struct AlgCase {
  std::string label;
  SignalingFactory factory;
  int n_waiters;
  /// False for the fixed-waiters variants (the signaler may not Poll())
  /// and for dsm-single-waiter (a polling signaler would register itself
  /// as the unique waiter, clobbering W).
  bool signaler_may_poll = true;
  /// False for dsm-queue: a waiter crashed between FAI(Tail) and filling
  /// its slot blocks the signaler forever — liveness is conditional on
  /// crash-free histories (see tests/failure_test.cc), in both engines.
  bool crash_safe = true;
};

// Factories parameterized on the waiter count n (signaler id = n).
std::vector<AlgCase> lowered_algorithms(int n) {
  return {
      {"cc-flag",
       [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); }, n},
      {"dsm-single-waiter",
       [](SharedMemory& m) {
         return std::make_unique<DsmSingleWaiterSignal>(m);
       },
       1,
       /*signaler_may_poll=*/false},
      {"dsm-registration",
       [n](SharedMemory& m) {
         return std::make_unique<DsmRegistrationSignal>(m, ProcId{n});
       },
       n},
      {"dsm-fixed-waiters",
       [n](SharedMemory& m) {
         std::vector<ProcId> ws;
         for (ProcId i = 0; i < n; ++i) ws.push_back(i);
         return std::make_unique<DsmFixedWaitersSignal>(m, ws);
       },
       n,
       /*signaler_may_poll=*/false},
      {"dsm-fixed-waiters-terminating",
       [n](SharedMemory& m) {
         std::vector<ProcId> ws;
         for (ProcId i = 0; i < n; ++i) ws.push_back(i);
         return std::make_unique<DsmFixedWaitersTerminating>(m, ws,
                                                             ProcId{n});
       },
       n,
       /*signaler_may_poll=*/false},
      {"dsm-queue",
       [](SharedMemory& m) { return std::make_unique<DsmQueueSignal>(m); },
       n,
       /*signaler_may_poll=*/true,
       /*crash_safe=*/false},
      {"cas-registration",
       [](SharedMemory& m) {
         return std::make_unique<CasRegistrationSignal>(m);
       },
       n},
      {"llsc-registration",
       [](SharedMemory& m) {
         return std::make_unique<LlscRegistrationSignal>(m);
       },
       n},
  };
}

std::unique_ptr<SharedMemory> make_model(const std::string& model,
                                         int nprocs) {
  if (model == "dsm") return make_dsm(nprocs);
  if (model == "cc-wt") return make_cc(nprocs, CcPolicy::kWriteThrough);
  if (model == "cc-wb") return make_cc(nprocs, CcPolicy::kWriteBack);
  if (model == "cc-mesi") return make_cc(nprocs, CcPolicy::kMesi);
  if (model == "cc-lfcu") return make_cc(nprocs, CcPolicy::kLfcu);
  ADD_FAILURE() << "unknown model " << model;
  return make_dsm(nprocs);
}

void expect_ledgers_equal(const SharedMemory& a, const SharedMemory& b,
                          const std::string& what) {
  ASSERT_EQ(a.nprocs(), b.nprocs()) << what;
  EXPECT_EQ(a.ledger().total_ops(), b.ledger().total_ops()) << what;
  EXPECT_EQ(a.ledger().total_rmrs(), b.ledger().total_rmrs()) << what;
  for (ProcId p = 0; p < a.nprocs(); ++p) {
    EXPECT_EQ(a.ledger().ops(p), b.ledger().ops(p)) << what << " p" << p;
    EXPECT_EQ(a.ledger().rmrs(p), b.ledger().rmrs(p)) << what << " p" << p;
  }
}

void run_workload_pair(const AlgCase& alg, const std::string& model,
                       SignalingWorkloadOptions options) {
  const std::string what = alg.label + "/" + model +
                           (options.blocking ? "/blocking" : "/polling") +
                           (options.history_mode == HistoryMode::kCountersOnly
                                ? "/counters"
                                : "/full");
  options.n_waiters = alg.n_waiters;
  if (!alg.signaler_may_poll) options.signaler_idle_polls = 0;

  options.engine = StepEngine::kCoroutine;
  const auto oracle = run_signaling_workload(
      make_model(model, alg.n_waiters + 1), alg.factory, options);
  ASSERT_FALSE(oracle.compiled) << what;

  options.engine = StepEngine::kCompiled;
  const auto compiled = run_signaling_workload(
      make_model(model, alg.n_waiters + 1), alg.factory, options);
  ASSERT_TRUE(compiled.compiled) << what;

  EXPECT_EQ(oracle.sim->schedule(), compiled.sim->schedule()) << what;
  const History& oh = oracle.sim->history();
  const History& ch = compiled.sim->history();
  EXPECT_EQ(oh.size(), ch.size()) << what;
  if (options.history_mode == HistoryMode::kFull) {
    EXPECT_EQ(oh.to_string(), ch.to_string()) << what;
    const auto violation = check_polling_spec(ch);
    EXPECT_FALSE(violation.has_value()) << what << ": " << violation->what;
  }
  EXPECT_EQ(oh.total_rmrs(), ch.total_rmrs()) << what;
  for (ProcId p = 0; p <= alg.n_waiters; ++p) {
    EXPECT_EQ(oh.rmrs(p), ch.rmrs(p)) << what << " p" << p;
    EXPECT_EQ(oh.mem_steps(p), ch.mem_steps(p)) << what << " p" << p;
    EXPECT_EQ(oh.is_finished(p), ch.is_finished(p)) << what << " p" << p;
  }
  expect_ledgers_equal(*oracle.mem, *compiled.mem, what);
}

TEST(BytecodeParity, EveryAlgorithmEveryModelFullHistory) {
  for (const auto& alg : lowered_algorithms(3)) {
    for (const std::string model :
         {"dsm", "cc-wt", "cc-wb", "cc-mesi", "cc-lfcu"}) {
      for (const std::uint64_t seed : {0ull, 7ull}) {
        SignalingWorkloadOptions options;
        options.signaler_idle_polls = 2;
        options.scheduler_seed = seed;
        run_workload_pair(alg, model, options);
      }
    }
  }
}

TEST(BytecodeParity, EveryAlgorithmCountersOnly) {
  for (const auto& alg : lowered_algorithms(4)) {
    SignalingWorkloadOptions options;
    options.history_mode = HistoryMode::kCountersOnly;
    options.signaler_idle_polls = 1;
    options.scheduler_seed = 11;
    run_workload_pair(alg, "dsm", options);
    run_workload_pair(alg, "cc-wb", options);
  }
}

TEST(BytecodeParity, BlockingWaitersMatchNativeWaitOverride) {
  // CcFlagSignal overrides wait() natively; the lowering uses the poll-loop
  // reduction. The memory-op sequences are identical, so parity must hold.
  for (const auto& alg : lowered_algorithms(2)) {
    SignalingWorkloadOptions options;
    options.blocking = true;
    options.scheduler_seed = 3;
    run_workload_pair(alg, "dsm", options);
    run_workload_pair(alg, "cc-wt", options);
  }
}

// ---------------------------------------------------------------------------
// Directive-driver parity: the adversary-steered client loop.
// ---------------------------------------------------------------------------

struct DriverWorld {
  std::unique_ptr<SharedMemory> mem;
  std::unique_ptr<SignalingAlgorithm> alg;
  std::unique_ptr<Simulation> sim;
};

DriverWorld make_driver_world(bool compiled, int nprocs,
                              Simulation::DirectivePolicy policy) {
  DriverWorld w;
  w.mem = make_dsm(nprocs);
  w.alg = std::make_unique<CasRegistrationSignal>(*w.mem);
  SignalingAlgorithm* a = w.alg.get();
  auto programs = std::make_shared<std::vector<Program>>();
  for (int i = 0; i < nprocs; ++i) {
    programs->emplace_back(
        [a](ProcCtx& ctx) { return signaling_driver(ctx, a); });
  }
  std::shared_ptr<const BytecodeSet> bc;
  if (compiled) {
    auto set = std::make_shared<BytecodeSet>();
    for (ProcId p = 0; p < nprocs; ++p) {
      set->per_proc.push_back(compile_signaling_driver(*a, p));
    }
    bc = set;
  }
  w.sim = std::make_unique<Simulation>(*w.mem, std::move(programs), bc,
                                       std::move(policy));
  return w;
}

TEST(BytecodeParity, DirectiveDriverMixedCalls) {
  // Waiters 0..1 poll twice then wait; signaler 2 polls once then signals.
  const auto policy = [](ProcId p, int k) -> Directive {
    if (p < 2) {
      if (k < 2) return {.action = signaling_actions::kPoll};
      if (k == 2) return {.action = signaling_actions::kWait};
      return {.action = signaling_actions::kTerminate};
    }
    if (k == 0) return {.action = signaling_actions::kPoll};
    if (k == 1) return {.action = signaling_actions::kSignal};
    return {.action = signaling_actions::kTerminate};
  };
  auto oracle = make_driver_world(false, 3, policy);
  auto compiled = make_driver_world(true, 3, policy);
  RoundRobinScheduler s1, s2;
  const auto r1 = oracle.sim->run(s1, 1'000'000);
  const auto r2 = compiled.sim->run(s2, 1'000'000);
  ASSERT_TRUE(r1.all_terminated);
  ASSERT_TRUE(r2.all_terminated);
  EXPECT_EQ(oracle.sim->history().to_string(),
            compiled.sim->history().to_string());
  EXPECT_EQ(oracle.sim->schedule(), compiled.sim->schedule());
  expect_ledgers_equal(*oracle.mem, *compiled.mem, "driver");
  for (ProcId p = 0; p < 3; ++p) {
    EXPECT_EQ(oracle.sim->directives_consumed(p),
              compiled.sim->directives_consumed(p));
  }
}

TEST(BytecodeParity, UnknownDirectiveTrapsLikeTheCoroutineDriver) {
  const auto policy = [](ProcId, int) -> Directive {
    return {.action = 99};
  };
  auto compiled = make_driver_world(true, 2, policy);
  RoundRobinScheduler sched;
  EXPECT_THROW(compiled.sim->run(sched, 1'000), std::logic_error);
}

// ---------------------------------------------------------------------------
// Crash / recovery parity.
// ---------------------------------------------------------------------------

TEST(BytecodeParity, CrashRecoveryIdenticalHistories) {
  for (const auto& alg : lowered_algorithms(2)) {
    if (!alg.crash_safe) continue;
    auto run_one = [&](bool use_bytecode) {
      DriverWorld w;
      w.mem = make_dsm(3);
      w.alg = alg.factory(*w.mem);
      SignalingAlgorithm* a = w.alg.get();
      auto programs = std::make_shared<std::vector<Program>>();
      for (int i = 0; i < alg.n_waiters; ++i) {
        programs->emplace_back([a](ProcCtx& ctx) {
          return polling_waiter(ctx, a, 1'000);
        });
      }
      const int idle = alg.signaler_may_poll ? 1 : 0;
      programs->emplace_back(
          [a, idle](ProcCtx& ctx) { return signaler(ctx, a, idle); });
      std::shared_ptr<const BytecodeSet> bc;
      if (use_bytecode) {
        bc = compile_signaling_programs(*a, alg.n_waiters + 1,
                                        /*blocking=*/false,
                                        /*max_polls=*/1'000, idle);
      }
      w.sim = std::make_unique<Simulation>(*w.mem, std::move(programs), bc);
      // A few steps, crash waiter 0 mid-call, take more steps, recover, then
      // run everyone to completion under round-robin.
      for (int k = 0; k < 3; ++k) {
        if (w.sim->ready(0)) w.sim->step(0);
      }
      w.sim->crash(0);
      for (int k = 0; k < 2; ++k) {
        if (w.sim->ready(alg.n_waiters)) w.sim->step(alg.n_waiters);
      }
      w.sim->recover(0);
      RoundRobinScheduler sched;
      const auto res = w.sim->run(sched, 1'000'000);
      EXPECT_TRUE(res.all_terminated) << alg.label;
      return w;
    };
    auto oracle = run_one(false);
    auto compiled = run_one(true);
    EXPECT_EQ(oracle.sim->history().to_string(),
              compiled.sim->history().to_string())
        << alg.label;
    EXPECT_EQ(oracle.sim->schedule(), compiled.sim->schedule()) << alg.label;
    EXPECT_EQ(oracle.sim->crash_count(0), compiled.sim->crash_count(0));
    EXPECT_EQ(oracle.sim->recovery_count(0),
              compiled.sim->recovery_count(0));
    expect_ledgers_equal(*oracle.mem, *compiled.mem, alg.label);
  }
}

// ---------------------------------------------------------------------------
// World forking: compiled (pc, regs) state survives snapshot/restore.
// ---------------------------------------------------------------------------

TEST(BytecodeParity, ForkedCompiledWorldMatchesOracle) {
  for (const auto& alg : lowered_algorithms(2)) {
    auto run_one = [&](bool use_bytecode) {
      DriverWorld w;
      w.mem = make_dsm(3);
      w.alg = alg.factory(*w.mem);
      SignalingAlgorithm* a = w.alg.get();
      auto programs = std::make_shared<std::vector<Program>>();
      for (int i = 0; i < alg.n_waiters; ++i) {
        programs->emplace_back([a](ProcCtx& ctx) {
          return polling_waiter(ctx, a, 1'000);
        });
      }
      const int idle = alg.signaler_may_poll ? 2 : 0;
      programs->emplace_back(
          [a, idle](ProcCtx& ctx) { return signaler(ctx, a, idle); });
      std::shared_ptr<const BytecodeSet> bc;
      if (use_bytecode) {
        bc = compile_signaling_programs(*a, alg.n_waiters + 1, false, 1'000,
                                        idle);
      }
      w.sim = std::make_unique<Simulation>(*w.mem, std::move(programs), bc);
      return w;
    };

    auto finish = [](Simulation& sim) {
      RoundRobinScheduler sched;
      const auto res = sim.run(sched, 1'000'000);
      EXPECT_TRUE(res.all_terminated);
    };

    auto compiled = run_one(true);
    compiled.sim->enable_fork_log();
    // Run a prefix so the fork captures mid-program (pc, regs) state.
    for (int k = 0; k < 5; ++k) {
      for (ProcId p = 0; p <= alg.n_waiters; ++p) {
        if (compiled.sim->ready(p)) compiled.sim->step(p);
      }
    }
    auto forked = compiled.sim->fork();
    finish(*compiled.sim);
    finish(*forked.sim);
    EXPECT_EQ(compiled.sim->history().to_string(),
              forked.sim->history().to_string())
        << alg.label;
    expect_ledgers_equal(*compiled.mem, *forked.mem, alg.label);

    // And both match the never-forked coroutine oracle end to end.
    auto oracle = run_one(false);
    oracle.sim->enable_fork_log();
    for (int k = 0; k < 5; ++k) {
      for (ProcId p = 0; p <= alg.n_waiters; ++p) {
        if (oracle.sim->ready(p)) oracle.sim->step(p);
      }
    }
    finish(*oracle.sim);
    EXPECT_EQ(oracle.sim->history().to_string(),
              compiled.sim->history().to_string())
        << alg.label;
  }
}

// ---------------------------------------------------------------------------
// DPOR exploration over the compiled engine (runs under TSan in CI).
// ---------------------------------------------------------------------------

ExploreBuilder compiled_builder(int n_waiters, int polls) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(n_waiters + 1);
    auto alg = std::make_shared<CcFlagSignal>(*inst.mem);
    auto programs = std::make_shared<std::vector<Program>>();
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs->emplace_back(
          [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    }
    programs->emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(
        *inst.mem, std::move(programs),
        compile_signaling_programs(*a, n_waiters + 1, false, polls));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreChecker polling_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h); v.has_value()) return v->what;
    return std::nullopt;
  };
}

TEST(BytecodeParity, DporExploresCompiledEngine) {
  const auto compiled =
      explore_dpor(compiled_builder(2, 2), polling_checker(),
                   {.max_depth = 16, .max_nodes = 500'000, .workers = 4});
  EXPECT_FALSE(compiled.violation.has_value()) << *compiled.violation;
  EXPECT_TRUE(compiled.exhausted);
  EXPECT_GT(compiled.complete_schedules, 0u);
}

}  // namespace
}  // namespace rmrsim
