// Crash-tolerant exploration: the persistent frontier (verify/checkpoint.h)
// and the worker-failure discipline (DporOptions retry/quarantine).
//
// The contract under test: a search that is killed, corrupted, retried, or
// resumed must produce results byte-identical to an uninterrupted run —
// same verdict, same lex-least violating schedule, same statistics — with
// only the recovery-accounting counters (checkpoint_item_hits,
// checkpoint_epochs, worker_failures, item_retries) free to differ.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"
#include "signaling/broken.h"
#include "signaling/checker.h"
#include "signaling/dsm_registration.h"
#include "verify/checkpoint.h"
#include "verify/dpor.h"
#include "verify/explorer.h"

namespace rmrsim {
namespace {

namespace fs = std::filesystem;

template <typename Alg, typename... Args>
ExploreBuilder signaling_builder(int n_waiters, int polls, Args... args) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(n_waiters + 1);
    auto alg = std::make_shared<Alg>(*inst.mem, args...);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    }
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreChecker polling_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h); v.has_value()) return v->what;
    return std::nullopt;
  };
}

/// Everything the determinism contract covers. The four recovery counters
/// are deliberately absent: they describe how the run was executed, not
/// what it found.
void expect_results_identical(const ExploreResult& a, const ExploreResult& b) {
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  EXPECT_EQ(a.complete_schedules, b.complete_schedules);
  EXPECT_EQ(a.truncated_schedules, b.truncated_schedules);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.violating_schedule, b.violating_schedule);
  EXPECT_EQ(a.stats.sleep_set_prunes, b.stats.sleep_set_prunes);
  EXPECT_EQ(a.stats.backtrack_points, b.stats.backtrack_points);
  EXPECT_EQ(a.stats.sleep_blocked_paths, b.stats.sleep_blocked_paths);
  EXPECT_EQ(a.stats.replayed_steps, b.stats.replayed_steps);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.work_items, b.stats.work_items);
  EXPECT_DOUBLE_EQ(a.stats.naive_tree_estimate, b.stats.naive_tree_estimate);
}

/// A scratch checkpoint directory, removed on destruction.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("rmrsim-ckpt-" + tag + "-" + std::to_string(getpid())))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

ItemOutcome sample_outcome() {
  ItemOutcome out;
  out.schedule = {0, 2, 1};
  out.charged = 7;
  out.nodes = 6;
  out.complete = 2;
  out.truncated = 1;
  out.sleep_prunes = 3;
  out.sleep_blocked = 1;
  out.backtracks = 4;
  out.replay.replayed_steps = 99;
  out.replay.snapshot_hits = 5;
  out.replay.snapshot_misses = 2;
  out.replay.snapshots_taken = 4;
  out.replay.snapshot_evictions = 1;
  out.replay.snapshot_delta_steps = 42;
  out.replay.snapshot_peak_bytes = 4096;
  out.estimate_sum = 123.5;
  out.leaves = 3;
  out.violations.push_back({{0, 2, 1, 1}, "property violated"});
  out.completes.push_back({0, 2, 1, 2});
  out.completes.push_back({0, 2, 1, 0, 2});
  out.externals.push_back({{0, 2}, 1});
  return out;
}

TEST(CheckpointFormat, EncodeDecodeRoundTrip) {
  const ItemOutcome out = sample_outcome();
  const ItemOutcome back = decode_item_outcome(encode_item_outcome(out));
  EXPECT_EQ(back.schedule, out.schedule);
  EXPECT_EQ(back.charged, out.charged);
  EXPECT_EQ(back.nodes, out.nodes);
  EXPECT_EQ(back.complete, out.complete);
  EXPECT_EQ(back.truncated, out.truncated);
  EXPECT_EQ(back.sleep_prunes, out.sleep_prunes);
  EXPECT_EQ(back.sleep_blocked, out.sleep_blocked);
  EXPECT_EQ(back.backtracks, out.backtracks);
  EXPECT_EQ(back.replay.replayed_steps, out.replay.replayed_steps);
  EXPECT_EQ(back.replay.snapshot_peak_bytes, out.replay.snapshot_peak_bytes);
  EXPECT_DOUBLE_EQ(back.estimate_sum, out.estimate_sum);
  EXPECT_EQ(back.leaves, out.leaves);
  ASSERT_EQ(back.violations.size(), 1u);
  EXPECT_EQ(back.violations[0].schedule, out.violations[0].schedule);
  EXPECT_EQ(back.violations[0].message, out.violations[0].message);
  EXPECT_EQ(back.completes, out.completes);
  ASSERT_EQ(back.externals.size(), 1u);
  EXPECT_EQ(back.externals[0].node_path, out.externals[0].node_path);
  EXPECT_EQ(back.externals[0].proc, out.externals[0].proc);
  EXPECT_FALSE(back.budget_hit) << "budget_hit is never serialized";
}

TEST(CheckpointFormat, DecodeRejectsTruncationAndJunk) {
  const std::string bytes = encode_item_outcome(sample_outcome());
  // Every proper prefix must be rejected, not misread: the decoder is the
  // last line of defense against a torn record that slipped past the CRC.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(decode_item_outcome(std::string_view(bytes).substr(0, cut)),
                 std::runtime_error)
        << "prefix of " << cut << " bytes";
  }
  // Trailing garbage is equally fatal — a record must consume its payload
  // exactly.
  EXPECT_THROW(decode_item_outcome(bytes + "x"), std::runtime_error);
}

TEST(Checkpoint, PersistsAcrossInstancesAndPrunesOldEpochs) {
  TempDir dir("persist");
  ExploreCheckpoint::Config cfg;
  cfg.dir = dir.path;
  cfg.fingerprint = 0xF00D;
  cfg.flush_interval = 1;  // one epoch per record
  cfg.keep_epochs = 2;
  {
    ExploreCheckpoint ck(cfg);
    ck.reset();
    for (int i = 0; i < 5; ++i) {
      ItemOutcome out = sample_outcome();
      out.schedule = {0, static_cast<ProcId>(i)};
      ck.record_outcome(out);
    }
    ck.record_quarantine({9, 9}, "injected worker failure");
    ck.flush();
    EXPECT_EQ(ck.outcome_count(), 5u);
  }
  // Pruning: only keep_epochs files remain on disk.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 2u);

  ExploreCheckpoint again(cfg);
  const auto rep = again.load_latest();
  EXPECT_EQ(rep.outcomes, 5u);
  EXPECT_EQ(rep.quarantined, 1u);
  EXPECT_TRUE(rep.discarded.empty());
  ItemOutcome got;
  ASSERT_TRUE(again.lookup({0, 3}, &got));
  EXPECT_EQ(got.charged, sample_outcome().charged);
  std::string why;
  ASSERT_TRUE(again.is_quarantined({9, 9}, &why));
  EXPECT_EQ(why, "injected worker failure");
  EXPECT_FALSE(again.is_quarantined({0, 3}));
}

TEST(Checkpoint, CorruptNewestEpochFallsBackToPrevious) {
  TempDir dir("torn");
  ExploreCheckpoint::Config cfg;
  cfg.dir = dir.path;
  cfg.fingerprint = 1;
  cfg.flush_interval = 1;
  {
    ExploreCheckpoint ck(cfg);
    ck.reset();
    for (int i = 0; i < 3; ++i) {
      ItemOutcome out = sample_outcome();
      out.schedule = {static_cast<ProcId>(i)};
      ck.record_outcome(out);
    }
  }
  // Tear the newest epoch mid-file, as a crash during a non-atomic write
  // (or a bad disk) would. The loader must reject it on CRC/truncation and
  // install the previous epoch — 2 outcomes, not 3, and never garbage.
  std::string newest;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    const std::string p = e.path().string();
    if (newest.empty() || p > newest) newest = p;
  }
  ASSERT_FALSE(newest.empty());
  fs::resize_file(newest, 40);

  ExploreCheckpoint ck(cfg);
  const auto rep = ck.load_latest();
  EXPECT_EQ(rep.outcomes, 2u);
  ASSERT_EQ(rep.discarded.size(), 1u);
  EXPECT_NE(rep.discarded[0].find(newest), std::string::npos)
      << "the discarded line names the torn file";
  ItemOutcome got;
  EXPECT_TRUE(ck.lookup({0}, &got));
  EXPECT_TRUE(ck.lookup({1}, &got));
  EXPECT_FALSE(ck.lookup({2}, &got)) << "the torn epoch's extra record is gone";
}

TEST(Checkpoint, FingerprintMismatchIsAHardError) {
  TempDir dir("fp");
  ExploreCheckpoint::Config cfg;
  cfg.dir = dir.path;
  cfg.fingerprint = 0xAAAA;
  {
    ExploreCheckpoint ck(cfg);
    ck.reset();
    ck.record_outcome(sample_outcome());
    ck.flush();
  }
  cfg.fingerprint = 0xBBBB;  // "the user changed --depth"
  ExploreCheckpoint other(cfg);
  EXPECT_THROW(other.load_latest(), std::exception)
      << "outcomes from a different search must never be silently reused";
}

// ---------------------------------------------------------------------------
// End-to-end: checkpointed searches vs the plain in-memory search.

struct SearchCase {
  const char* name;
  ExploreBuilder build;
  ExploreChecker check;
  DporOptions opt;
};

std::vector<SearchCase> search_cases() {
  std::vector<SearchCase> cases;
  for (const int workers : {1, 2}) {
    for (const SnapshotMode mode :
         {SnapshotMode::kReplay, SnapshotMode::kSnapshot}) {
      DporOptions opt;
      opt.max_depth = 14;
      opt.workers = workers;
      opt.trunk_depth = 4;
      opt.snapshot_mode = mode;
      SearchCase healthy{
          "healthy", signaling_builder<DsmRegistrationSignal>(2, 1, ProcId{2}),
          polling_checker(), opt};
      SearchCase broken{
          "broken", signaling_builder<BrokenLocalSignal>(1, 2),
          polling_checker(), opt};
      broken.opt.max_depth = 16;
      cases.push_back(std::move(healthy));
      cases.push_back(std::move(broken));
    }
  }
  return cases;
}

TEST(CheckpointSearch, ResumedSearchReproducesUninterruptedRun) {
  for (const SearchCase& sc : search_cases()) {
    SCOPED_TRACE(std::string(sc.name) + " workers=" +
                 std::to_string(sc.opt.workers));
    const ExploreResult ref = explore_dpor(sc.build, sc.check, sc.opt);
    ASSERT_TRUE(ref.exhausted);

    TempDir dir(std::string("e2e-") + sc.name);
    ExploreCheckpoint::Config cfg;
    cfg.dir = dir.path;
    cfg.fingerprint = 42;
    cfg.flush_interval = 2;

    // First leg: full run with checkpointing on. Same results, epochs on
    // disk, nothing served from the (empty) checkpoint.
    ExploreCheckpoint ck(cfg);
    ck.reset();
    DporOptions opt = sc.opt;
    opt.checkpoint = &ck;
    const ExploreResult first = explore_dpor(sc.build, sc.check, opt);
    expect_results_identical(ref, first);
    EXPECT_EQ(first.stats.checkpoint_item_hits, 0u);
    if (first.stats.work_items > 0) {
      EXPECT_GT(first.stats.checkpoint_epochs, 0u);
    }

    // Second leg: resume from disk. Every item is a checkpoint hit; the
    // result is still identical.
    ExploreCheckpoint resumed(cfg);
    const auto rep = resumed.load_latest();
    EXPECT_EQ(rep.outcomes, first.stats.work_items);
    opt.checkpoint = &resumed;
    const ExploreResult second = explore_dpor(sc.build, sc.check, opt);
    expect_results_identical(ref, second);
    EXPECT_EQ(second.stats.checkpoint_item_hits, first.stats.work_items);
  }
}

TEST(CheckpointSearch, SigkillMidSearchThenResumeMatchesReference) {
  // The real crash: fork a child that runs the checkpointed search and
  // SIGKILLs itself the moment the first epoch is durable. The parent then
  // resumes from whatever the dead child left on disk and must reproduce
  // the uninterrupted reference exactly.
  const auto build = signaling_builder<DsmRegistrationSignal>(2, 1, ProcId{2});
  const auto check = polling_checker();
  DporOptions base;
  base.max_depth = 14;
  base.trunk_depth = 4;
  const ExploreResult ref = explore_dpor(build, check, base);
  ASSERT_TRUE(ref.exhausted);
  ASSERT_GT(ref.stats.work_items, 4u) << "need enough items to die mid-run";

  TempDir dir("sigkill");
  ExploreCheckpoint::Config cfg;
  cfg.dir = dir.path;
  cfg.fingerprint = 7;
  cfg.flush_interval = 2;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die by SIGKILL — not exit() — once epoch 2 is on disk, so the
    // search is genuinely cut off mid-flight with no destructors run.
    ExploreCheckpoint::Config child_cfg = cfg;
    child_cfg.on_epoch_written = [](std::uint64_t epoch) {
      if (epoch >= 2) raise(SIGKILL);
    };
    ExploreCheckpoint ck(child_cfg);
    ck.reset();
    DporOptions opt = base;
    opt.checkpoint = &ck;
    (void)explore_dpor(build, check, opt);
    _exit(0);  // only reached if the search somehow finished early
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child was supposed to die mid-search";

  ExploreCheckpoint ck(cfg);
  const auto rep = ck.load_latest();
  EXPECT_GT(rep.outcomes, 0u) << "the dead child left durable progress";
  EXPECT_LT(rep.outcomes, ref.stats.work_items) << "...but not all of it";
  DporOptions opt = base;
  opt.checkpoint = &ck;
  const ExploreResult resumed = explore_dpor(build, check, opt);
  expect_results_identical(ref, resumed);
  EXPECT_EQ(resumed.stats.checkpoint_item_hits, rep.outcomes);
}

TEST(CheckpointSearch, BudgetTruncatedItemsAreNeverCheckpointed) {
  // A search cut short by max_nodes writes no partial item outcomes: a
  // resume with the full budget re-explores from scratch and matches a
  // fresh unlimited run (a recorded partial outcome would poison it).
  const auto build = signaling_builder<DsmRegistrationSignal>(2, 1, ProcId{2});
  const auto check = polling_checker();
  DporOptions base;
  base.max_depth = 14;
  base.trunk_depth = 4;
  const ExploreResult ref = explore_dpor(build, check, base);
  ASSERT_TRUE(ref.exhausted);

  TempDir dir("budget");
  ExploreCheckpoint::Config cfg;
  cfg.dir = dir.path;
  cfg.fingerprint = 3;
  cfg.flush_interval = 1;

  ExploreCheckpoint ck(cfg);
  ck.reset();
  DporOptions tiny = base;
  tiny.checkpoint = &ck;
  tiny.max_nodes = ref.nodes_visited / 2;
  const ExploreResult cut = explore_dpor(build, check, tiny);
  ASSERT_FALSE(cut.exhausted);

  // Only complete outcomes may be on disk; resuming with the real budget
  // must land exactly on the reference.
  ExploreCheckpoint resumed(cfg);
  const auto rep = resumed.load_latest();
  DporOptions full = base;
  full.checkpoint = &resumed;
  const ExploreResult after = explore_dpor(build, check, full);
  expect_results_identical(ref, after);
  EXPECT_EQ(after.stats.checkpoint_item_hits, rep.outcomes);
}

TEST(WorkerFailure, TransientFailuresRetryWithoutChangingTheVerdict) {
  const auto build = signaling_builder<DsmRegistrationSignal>(2, 1, ProcId{2});
  const auto check = polling_checker();
  DporOptions base;
  base.max_depth = 14;
  base.trunk_depth = 4;
  const ExploreResult ref = explore_dpor(build, check, base);
  ASSERT_TRUE(ref.exhausted);

  for (const int workers : {1, 2}) {
    DporOptions opt = base;
    opt.workers = workers;
    opt.retry_backoff_ms = 0;
    // Every item's first attempt dies; the retry succeeds.
    opt.inject_item_failure = [](const std::vector<ProcId>&, int attempt) {
      return attempt == 1;
    };
    const ExploreResult r = explore_dpor(build, check, opt);
    expect_results_identical(ref, r);
    EXPECT_TRUE(r.quarantined_items.empty());
    EXPECT_EQ(r.stats.worker_failures, ref.stats.work_items);
    EXPECT_EQ(r.stats.item_retries, ref.stats.work_items);
  }
}

TEST(WorkerFailure, PermanentFailureQuarantinesAndPersistsAcrossResume) {
  const auto build = signaling_builder<DsmRegistrationSignal>(2, 1, ProcId{2});
  const auto check = polling_checker();
  DporOptions base;
  base.max_depth = 14;
  base.trunk_depth = 4;
  const ExploreResult ref = explore_dpor(build, check, base);
  ASSERT_GT(ref.stats.work_items, 0u);

  TempDir dir("quar");
  ExploreCheckpoint::Config cfg;
  cfg.dir = dir.path;
  cfg.fingerprint = 11;
  ExploreCheckpoint ck(cfg);
  ck.reset();

  // One item is cursed: every attempt fails. Identify it deterministically
  // as "the first item the failure hook ever sees".
  std::mutex mu;
  std::vector<ProcId> cursed;
  DporOptions opt = base;
  opt.checkpoint = &ck;
  opt.item_max_attempts = 2;
  opt.retry_backoff_ms = 0;
  opt.inject_item_failure = [&](const std::vector<ProcId>& sched, int) {
    std::lock_guard<std::mutex> g(mu);
    if (cursed.empty()) cursed = sched;
    return sched == cursed;
  };
  const ExploreResult r = explore_dpor(build, check, opt);
  EXPECT_FALSE(r.exhausted) << "a quarantined item means incomplete coverage";
  ASSERT_EQ(r.quarantined_items.size(), 1u);
  EXPECT_EQ(r.quarantined_items[0].schedule, cursed);
  EXPECT_EQ(r.stats.worker_failures, 2u) << "both attempts died";
  EXPECT_EQ(r.stats.item_retries, 1u) << "one retry before quarantine";

  // The quarantine is durable: a resume that injects no failures at all
  // still reports the item as quarantined (and does not silently re-run
  // it), because the checkpoint remembers the permanent failure.
  ExploreCheckpoint again(cfg);
  const auto rep = again.load_latest();
  EXPECT_EQ(rep.quarantined, 1u);
  DporOptions clean = base;
  clean.checkpoint = &again;
  const ExploreResult resumed = explore_dpor(build, check, clean);
  EXPECT_FALSE(resumed.exhausted);
  ASSERT_EQ(resumed.quarantined_items.size(), 1u);
  EXPECT_EQ(resumed.quarantined_items[0].schedule, cursed);
  EXPECT_EQ(resumed.stats.worker_failures, 0u);
}

TEST(WorkerFailure, PerAttemptNodeDeadlineQuarantinesRunawayItems) {
  // item_node_limit models a worker that wedges: an item that cannot finish
  // within the per-attempt budget fails every attempt and is quarantined —
  // the search survives, reports it, and completes everything else.
  const auto build = signaling_builder<DsmRegistrationSignal>(2, 1, ProcId{2});
  const auto check = polling_checker();
  DporOptions opt;
  opt.max_depth = 14;
  opt.trunk_depth = 4;
  opt.item_node_limit = 1;  // nothing real finishes in one node
  opt.item_max_attempts = 2;
  opt.retry_backoff_ms = 0;
  const ExploreResult r = explore_dpor(build, check, opt);
  EXPECT_FALSE(r.exhausted);
  EXPECT_FALSE(r.quarantined_items.empty());
  for (const auto& q : r.quarantined_items) {
    EXPECT_NE(q.reason.find("deadline"), std::string::npos) << q.reason;
  }
}

}  // namespace
}  // namespace rmrsim
