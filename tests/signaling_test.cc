// Integration tests for the signaling algorithms of Sections 5 and 7: safety
// (Specification 4.1) across schedules and models, RMR complexity shapes,
// and checker sharpness (the broken algorithm must be caught).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "sched/schedulers.h"
#include "signaling/broken.h"
#include "signaling/cas_registration.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_fixed.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/dsm_single_waiter.h"

namespace rmrsim {
namespace {

using AlgFactory =
    std::function<std::unique_ptr<SignalingAlgorithm>(SharedMemory&)>;

struct RunResult {
  std::unique_ptr<SharedMemory> mem;
  std::unique_ptr<SignalingAlgorithm> alg;
  std::unique_ptr<Simulation> sim;
};

/// Runs `n_waiters` polling waiters (procs 0..n-1) and one signaler (proc n)
/// under the given scheduler; waiters poll until true (or max_polls).
RunResult run_signaling(std::unique_ptr<SharedMemory> mem,
                        const AlgFactory& make_alg, int n_waiters,
                        Scheduler& sched, int max_polls = 1'000,
                        int signaler_idle_polls = 0) {
  RunResult r;
  r.mem = std::move(mem);
  r.alg = make_alg(*r.mem);
  std::vector<Program> programs;
  SignalingAlgorithm* alg = r.alg.get();
  for (int i = 0; i < n_waiters; ++i) {
    programs.emplace_back([alg, max_polls](ProcCtx& ctx) {
      return polling_waiter(ctx, alg, max_polls);
    });
  }
  programs.emplace_back([alg, signaler_idle_polls](ProcCtx& ctx) {
    return signaler(ctx, alg, signaler_idle_polls);
  });
  r.sim = std::make_unique<Simulation>(*r.mem, std::move(programs));
  const auto result = r.sim->run(sched, 10'000'000);
  EXPECT_TRUE(result.all_terminated) << "run did not complete";
  return r;
}

void expect_spec_holds(const History& h) {
  const auto v = check_polling_spec(h);
  EXPECT_FALSE(v.has_value()) << v->what << " at step " << v->step_index;
  const auto once = check_signal_once(h);
  EXPECT_FALSE(once.has_value()) << once->what;
}

// ---------------------------------------------------------------------------
// Parameterized safety sweep: every correct algorithm x both models x many
// schedules must satisfy Specification 4.1.
// ---------------------------------------------------------------------------

struct AlgCase {
  const char* label;
  AlgFactory factory;
  bool dsm_only = false;  // fixed-waiter variants assume specific homes
};

std::vector<AlgCase> correct_algorithms(int n_waiters, int nprocs) {
  std::vector<AlgCase> cases;
  cases.push_back({"cc-flag", [](SharedMemory& m) {
                     return std::make_unique<CcFlagSignal>(m);
                   }});
  cases.push_back({"dsm-registration", [nprocs](SharedMemory& m) {
                     return std::make_unique<DsmRegistrationSignal>(
                         m, static_cast<ProcId>(nprocs - 1));
                   }});
  cases.push_back({"dsm-queue-fai", [](SharedMemory& m) {
                     return std::make_unique<DsmQueueSignal>(m);
                   }});
  cases.push_back({"cas-registration", [](SharedMemory& m) {
                     return std::make_unique<CasRegistrationSignal>(m);
                   }});
  cases.push_back({"dsm-fixed-waiters", [n_waiters](SharedMemory& m) {
                     std::vector<ProcId> ws;
                     for (int i = 0; i < n_waiters; ++i) ws.push_back(i);
                     return std::make_unique<DsmFixedWaitersSignal>(
                         m, std::move(ws));
                   }});
  return cases;
}

class SignalingSafetySweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, bool>> {};

TEST_P(SignalingSafetySweep, SpecHoldsUnderRandomSchedules) {
  const int n_waiters = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  const bool use_cc = std::get<2>(GetParam());
  const int nprocs = n_waiters + 1;

  for (const AlgCase& c : correct_algorithms(n_waiters, nprocs)) {
    RandomScheduler sched(seed);
    auto mem = use_cc ? make_cc(nprocs) : make_dsm(nprocs);
    auto r = run_signaling(std::move(mem), c.factory, n_waiters, sched);
    SCOPED_TRACE(c.label);
    expect_spec_holds(r.sim->history());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SignalingSafetySweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 9),
                       ::testing::Values(1u, 7u, 42u, 1234u, 99999u),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Waiters actually learn about the signal (liveness under fair schedules).
// ---------------------------------------------------------------------------

TEST(SignalingLiveness, EveryWaiterEventuallyReturnsTrue) {
  const int n_waiters = 6;
  const int nprocs = n_waiters + 1;
  for (const AlgCase& c : correct_algorithms(n_waiters, nprocs)) {
    RoundRobinScheduler rr;
    auto r = run_signaling(make_dsm(nprocs), c.factory, n_waiters, rr,
                           /*max_polls=*/100'000);
    SCOPED_TRACE(c.label);
    // Under round-robin every waiter keeps polling until true; termination
    // of the run plus a legal history implies everyone saw the signal.
    expect_spec_holds(r.sim->history());
    int true_returns = 0;
    for (const StepRecord& rec : r.sim->history().records()) {
      if (rec.kind == StepRecord::Kind::kEvent &&
          rec.event == EventKind::kCallEnd && rec.code == calls::kPoll &&
          rec.value == 1) {
        ++true_returns;
      }
    }
    EXPECT_GE(true_returns, n_waiters) << "some waiter never saw the signal";
  }
}

// ---------------------------------------------------------------------------
// RMR complexity shapes (the paper's Sections 5 and 7 claims in miniature;
// the full sweeps live in bench/).
// ---------------------------------------------------------------------------

TEST(RmrShape, CcFlagIsO1PerProcessInCc) {
  const int n_waiters = 16;
  RoundRobinScheduler rr;
  auto r = run_signaling(make_cc(n_waiters + 1),
                         [](SharedMemory& m) {
                           return std::make_unique<CcFlagSignal>(m);
                         },
                         n_waiters, rr, /*max_polls=*/10'000);
  // Paper Section 5: each waiter pays one RMR to cache B and at most one
  // more after the signaler's single invalidation; the signaler pays one.
  for (ProcId p = 0; p <= n_waiters; ++p) {
    EXPECT_LE(r.mem->ledger().rmrs(p), 2u) << "process " << p;
  }
}

TEST(RmrShape, CcFlagIsUnboundedInDsm) {
  // The same algorithm in DSM: a remote waiter pays one RMR per poll, so a
  // delayed signaler (50 idle polls under round-robin) makes every waiter's
  // RMR count grow with the delay — unbounded RMR complexity in the paper's
  // sense. Contrast with CcFlagIsO1PerProcessInCc above.
  const int n_waiters = 4;
  RoundRobinScheduler rr;
  auto r = run_signaling(make_dsm(n_waiters + 1),
                         [](SharedMemory& m) {
                           return std::make_unique<CcFlagSignal>(m);
                         },
                         n_waiters, rr, /*max_polls=*/10'000,
                         /*signaler_idle_polls=*/50);
  for (ProcId p = 0; p < n_waiters; ++p) {
    EXPECT_GT(r.mem->ledger().rmrs(p), 20u) << "process " << p;
  }
}

TEST(RmrShape, DsmRegistrationWaitersO1SignalerOk) {
  const int n_waiters = 16;
  const int nprocs = n_waiters + 1;
  RoundRobinScheduler rr;
  auto r = run_signaling(make_dsm(nprocs),
                         [nprocs](SharedMemory& m) {
                           return std::make_unique<DsmRegistrationSignal>(
                               m, static_cast<ProcId>(nprocs - 1));
                         },
                         n_waiters, rr, /*max_polls=*/10'000);
  // Waiters: register (1 RMR to signaler's module) + first S read (1 RMR) +
  // local spins (0). Allow a small constant.
  for (ProcId p = 0; p < n_waiters; ++p) {
    EXPECT_LE(r.mem->ledger().rmrs(p), 3u) << "waiter " << p;
  }
  // Signaler: S write + one delivery per registered waiter; local sweep.
  EXPECT_LE(r.mem->ledger().rmrs(n_waiters),
            static_cast<std::uint64_t>(n_waiters + 2));
}

TEST(RmrShape, DsmQueueAmortizedO1) {
  const int n_waiters = 24;
  RoundRobinScheduler rr;
  auto r = run_signaling(make_dsm(n_waiters + 1),
                         [](SharedMemory& m) {
                           return std::make_unique<DsmQueueSignal>(m);
                         },
                         n_waiters, rr, /*max_polls=*/10'000);
  const double amortized =
      static_cast<double>(r.mem->ledger().total_rmrs()) /
      static_cast<double>(n_waiters + 1);
  // Waiter: FAI + announce + S read = 3; signaler: 1 + ~2 per waiter
  // (announcement read + delivery). Comfortably constant amortized.
  EXPECT_LE(amortized, 6.0);
}

// ---------------------------------------------------------------------------
// Single-waiter variant.
// ---------------------------------------------------------------------------

TEST(SingleWaiter, SpecAndO1Rmrs) {
  for (const std::uint64_t seed : {3u, 17u, 255u}) {
    auto mem = make_dsm(3);
    auto alg = std::make_unique<DsmSingleWaiterSignal>(*mem);
    SignalingAlgorithm* a = alg.get();
    std::vector<Program> programs;
    // One waiter (p0) and one signaler (p2); p1 idle.
    programs.emplace_back(
        [a](ProcCtx& ctx) { return polling_waiter(ctx, a, 10'000); });
    programs.emplace_back(Program{});
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    Simulation sim(*mem, std::move(programs));
    RandomScheduler sched(seed);
    sim.run(sched, 1'000'000);
    ASSERT_TRUE(sim.all_terminated());
    expect_spec_holds(sim.history());
    EXPECT_LE(mem->ledger().rmrs(0), 3u);  // register + S read
    EXPECT_LE(mem->ledger().rmrs(2), 3u);  // S write + W read + V delivery
  }
}

// ---------------------------------------------------------------------------
// Blocking semantics via the default Wait() reduction.
// ---------------------------------------------------------------------------

TEST(BlockingSemantics, WaitReturnsOnlyAfterSignalBegins) {
  const int n_waiters = 4;
  auto mem = make_dsm(n_waiters + 1);
  auto alg = std::make_unique<DsmQueueSignal>(*mem);
  SignalingAlgorithm* a = alg.get();
  std::vector<Program> programs;
  for (int i = 0; i < n_waiters; ++i) {
    programs.emplace_back([a](ProcCtx& ctx) { return blocking_waiter(ctx, a); });
  }
  programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  const auto result = sim.run(rr, 10'000'000);
  EXPECT_TRUE(result.all_terminated);
  const auto v = check_blocking_spec(sim.history());
  EXPECT_FALSE(v.has_value()) << v->what;
}

// ---------------------------------------------------------------------------
// The checker must catch the broken algorithm.
// ---------------------------------------------------------------------------

TEST(CheckerSharpness, BrokenAlgorithmIsFlagged) {
  // Schedule the signaler to completion first, then let a waiter poll: the
  // poll returns false after a completed Signal() — a clause-2 violation.
  auto mem = make_dsm(2);
  auto alg = std::make_unique<BrokenLocalSignal>(*mem);
  SignalingAlgorithm* a = alg.get();
  std::vector<Program> programs;
  programs.emplace_back([a](ProcCtx& ctx) { return polling_waiter(ctx, a, 3); });
  programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
  Simulation sim(*mem, std::move(programs));
  SoloScheduler signaler_first(1);
  sim.run(signaler_first, 1'000);
  ASSERT_TRUE(sim.terminated(1));
  SoloScheduler waiter_next(0);
  sim.run(waiter_next, 1'000);
  ASSERT_TRUE(sim.all_terminated());
  const auto v = check_polling_spec(sim.history());
  ASSERT_TRUE(v.has_value()) << "checker failed to flag the broken algorithm";
}

TEST(CheckerSharpness, SignalTwiceIsFlagged) {
  auto mem = make_dsm(1);
  auto alg = std::make_unique<CcFlagSignal>(*mem);
  SignalingAlgorithm* a = alg.get();
  std::vector<Program> programs;
  programs.emplace_back([a](ProcCtx& ctx) -> ProcTask {
    co_await ctx.call_begin(calls::kSignal);
    co_await a->signal(ctx);
    co_await ctx.call_end(calls::kSignal);
    co_await ctx.call_begin(calls::kSignal);
    co_await a->signal(ctx);
    co_await ctx.call_end(calls::kSignal);
  });
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  sim.run(rr, 1'000);
  EXPECT_TRUE(check_signal_once(sim.history()).has_value());
}

}  // namespace
}  // namespace rmrsim
