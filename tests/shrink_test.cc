// Shrinker unit tests: a counterexample with a known minimal core must
// shrink to exactly that core; the shrinker must never return a schedule
// that fails to reproduce the violation; and shrinking must canonicalize —
// different witnesses of the same bug converge to the same minimal one.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"
#include "signaling/broken.h"
#include "signaling/checker.h"
#include "verify/dpor.h"
#include "verify/explorer.h"
#include "verify/shrink.h"

namespace rmrsim {
namespace {

// One BrokenLocalSignal waiter (proc 0, `polls` polls) + signaler (proc 1).
// The bug fires on ANY schedule where a completed Signal() precedes a
// completed Poll(): the minimal witness is exactly
//   [1, 1, 0, 0]
// — signaler writes S, signaler terminates (flushing Signal's call-end),
// waiter reads its flag (flushing Poll's call-begin, now after the
// completed Signal), waiter terminates (flushing the false return).
ExploreBuilder broken_local_builder(int polls) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(2);
    auto alg = std::make_shared<BrokenLocalSignal>(*inst.mem);
    std::vector<Program> programs;
    SignalingAlgorithm* a = alg.get();
    programs.emplace_back(
        [a, polls](ProcCtx& ctx) { return polling_waiter(ctx, a, polls); });
    programs.emplace_back([a](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreChecker polling_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h); v.has_value()) return v->what;
    return std::nullopt;
  };
}

const std::vector<ProcId> kMinimalCore{1, 1, 0, 0};

TEST(Shrink, KnownMinimalCoreShrinksExactly) {
  const auto build = broken_local_builder(2);
  const auto check = polling_checker();

  // A noisy witness: the waiter burns a first (legal-false) poll before the
  // signaler runs; its second poll then begins after Signal() completed and
  // still returns false.
  const std::vector<ProcId> noisy{0, 1, 1, 0, 0};
  const auto base = reproduce_violation(build, check, noisy);
  ASSERT_TRUE(base.has_value()) << "the noisy witness must itself violate";

  const auto shrunk = shrink_counterexample(build, check, noisy);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_EQ(shrunk->schedule, kMinimalCore);
  EXPECT_EQ(shrunk->message, base->first);
  EXPECT_GT(shrunk->candidates_tried, 0);
}

TEST(Shrink, MinimalCoreIsAFixpoint) {
  const auto build = broken_local_builder(1);
  const auto check = polling_checker();
  const auto shrunk = shrink_counterexample(build, check, kMinimalCore);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_EQ(shrunk->schedule, kMinimalCore);

  // Sharpness of the core: every single-step deletion kills reproduction.
  for (std::size_t i = 0; i < kMinimalCore.size(); ++i) {
    std::vector<ProcId> cand = kMinimalCore;
    cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(reproduce_violation(build, check, cand).has_value())
        << "dropping step " << i << " should not reproduce";
  }
}

TEST(Shrink, DifferentWitnessesCanonicalizeToTheSameCore) {
  const auto build = broken_local_builder(2);
  const auto check = polling_checker();
  const std::vector<std::vector<ProcId>> witnesses{
      {1, 1, 0, 0},
      {1, 0, 1, 0, 0},  // first poll begins mid-Signal (legal), second trips
      {0, 1, 1, 0, 0},  // first poll burned before the signaler runs
      {1, 1, 0, 0, 0},  // trailing steps beyond the violation point
  };
  for (const auto& w : witnesses) {
    const auto shrunk = shrink_counterexample(build, check, w);
    ASSERT_TRUE(shrunk.has_value()) << "witness did not reproduce";
    EXPECT_EQ(shrunk->schedule, kMinimalCore);
  }
}

TEST(Shrink, NonViolatingScheduleReturnsNullopt) {
  const auto build = broken_local_builder(1);
  const auto check = polling_checker();
  // Waiter-only steps: poll returns a legal false, nothing violates.
  EXPECT_FALSE(
      shrink_counterexample(build, check, {0, 0}).has_value());
  // Invalid schedule: process id out of range.
  EXPECT_FALSE(
      shrink_counterexample(build, check, {5, 1, 1, 0, 0}).has_value());
  // Empty schedule: empty history, no violation.
  EXPECT_FALSE(shrink_counterexample(build, check, {}).has_value());
}

TEST(Shrink, ResultAlwaysReproduces) {
  // Property pinned across a batch of DPOR-found witnesses: whatever the
  // shrinker returns replays to the same message. Uses the DPOR explorer's
  // violating schedule for several poll budgets (deeper trees each time).
  for (const int polls : {1, 2, 3}) {
    const auto build = broken_local_builder(polls);
    const auto check = polling_checker();
    const auto r =
        explore_dpor(build, check, {.max_depth = 20, .max_nodes = 200'000});
    ASSERT_TRUE(r.violation.has_value());
    const auto shrunk =
        shrink_counterexample(build, check, r.violating_schedule);
    ASSERT_TRUE(shrunk.has_value());
    const auto replay = reproduce_violation(build, check, shrunk->schedule);
    ASSERT_TRUE(replay.has_value());
    EXPECT_EQ(replay->first, shrunk->message);
    EXPECT_EQ(replay->second, shrunk->schedule.size())
        << "shrunk schedule carries steps past the violation";
    EXPECT_LE(shrunk->schedule.size(), r.violating_schedule.size());
  }
}

}  // namespace
}  // namespace rmrsim
