// Semi-synchronous model tests (Section 3's timing-based systems): the
// delay() primitive, the bounded-gap Delta-scheduler, and Fischer's lock —
// whose safety is a property of the timing model: correct with an adequate
// delay under a Delta-scheduler, demonstrably broken otherwise.
#include <gtest/gtest.h>

#include <memory>

#include "memory/shared_memory.h"
#include "mutex/fischer_lock.h"
#include "sched/schedulers.h"

namespace rmrsim {
namespace {

TEST(Delay, SleeperIsNotReadyUntilClockAdvances) {
  auto mem = make_dsm(2);
  const VarId v = mem->allocate_global(0);
  std::vector<Program> programs(2);
  programs[0] = [v](ProcCtx& ctx) -> ProcTask {
    co_await ctx.delay(5);
    co_await ctx.write(v, 1);
  };
  programs[1] = [v](ProcCtx& ctx) -> ProcTask {
    co_await ctx.read(v);
    co_await ctx.read(v);
  };
  Simulation sim(*mem, std::move(programs));
  EXPECT_FALSE(sim.ready(0));  // armed at t=0, wakes at t=5
  EXPECT_TRUE(sim.ready(1));
  sim.step(1);  // t=1
  sim.step(1);  // t=2, p1 terminates
  EXPECT_FALSE(sim.ready(0));
  sim.tick();  // 3
  sim.tick();  // 4
  sim.tick();  // 5
  EXPECT_TRUE(sim.ready(0));
  sim.step(0);  // delay-completion event recorded
  EXPECT_EQ(sim.history().records().back().event, EventKind::kDelay);
  sim.step(0);
  EXPECT_EQ(mem->store().value(v), 1);
}

TEST(Delay, RunLoopTicksThroughAllAsleepPhases) {
  auto mem = make_dsm(1);
  const VarId v = mem->allocate_global(0);
  std::vector<Program> programs(1);
  programs[0] = [v](ProcCtx& ctx) -> ProcTask {
    co_await ctx.delay(10);
    co_await ctx.write(v, 7);
  };
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  const auto r = sim.run(rr, 1'000);
  EXPECT_TRUE(r.all_terminated);
  EXPECT_EQ(mem->store().value(v), 7);
  EXPECT_GE(sim.now(), 10u);
}

TEST(BoundedGap, NoReadyProcessStarvesPastDelta) {
  const int n = 4;
  const std::uint64_t delta = 8;
  auto mem = make_dsm(n);
  const VarId v = mem->allocate_global(0);
  std::vector<Program> programs;
  for (int i = 0; i < n; ++i) {
    programs.emplace_back([v](ProcCtx& ctx) -> ProcTask {
      for (int k = 0; k < 30; ++k) co_await ctx.faa(v, 1);
    });
  }
  Simulation sim(*mem, std::move(programs));
  BoundedGapScheduler sched(99, delta);
  std::vector<std::uint64_t> last(n, 0);
  while (!sim.all_terminated()) {
    const ProcId p = sched.next(sim);
    ASSERT_NE(p, kNoProc);
    EXPECT_LE(sim.now() - last[static_cast<std::size_t>(p)], delta)
        << "gap bound violated for p" << p;
    last[static_cast<std::size_t>(p)] = sim.now();
    sim.step(p);
  }
}

struct FischerRun {
  bool completed = false;
  bool violated = false;
};

FischerRun run_fischer(int n, Word lock_delay, std::uint64_t delta,
                       std::uint64_t seed) {
  auto mem = make_dsm(n);
  FischerLock lock(*mem, lock_delay);
  std::vector<Program> programs;
  for (int i = 0; i < n; ++i) {
    programs.emplace_back(
        [&lock](ProcCtx& ctx) { return mutex_worker(ctx, &lock, 3); });
  }
  Simulation sim(*mem, std::move(programs));
  BoundedGapScheduler sched(seed, delta);
  FischerRun out;
  out.completed = sim.run(sched, 5'000'000).all_terminated;
  out.violated = check_mutual_exclusion(sim.history()).has_value();
  return out;
}

TEST(Fischer, SafeWithAdequateDelayUnderDeltaScheduler) {
  const int n = 4;
  const std::uint64_t delta = 6;
  // Delay >= delta + slack for simultaneous deadline collisions (see
  // BoundedGapScheduler): every run must be safe and complete.
  for (const std::uint64_t seed : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u}) {
    const auto r = run_fischer(n, static_cast<Word>(delta + n), delta, seed);
    EXPECT_TRUE(r.completed) << "seed " << seed;
    EXPECT_FALSE(r.violated) << "seed " << seed;
  }
}

TEST(Fischer, BrokenWithoutTheDelay) {
  // delay(0): the classic bug. Some schedule must exhibit a mutual
  // exclusion violation — timing is load-bearing.
  const int n = 4;
  bool violation_found = false;
  for (std::uint64_t seed = 1; seed <= 200 && !violation_found; ++seed) {
    const auto r = run_fischer(n, 0, 6, seed);
    violation_found = r.violated;
  }
  EXPECT_TRUE(violation_found)
      << "no violation found with zero delay — the timing model is not "
         "being exercised";
}

TEST(TimedReplay, ScheduleWithTicksReplaysExactly) {
  // Clock ticks are recorded in the schedule (as kNoProc entries), so even
  // timed runs are replay-exact — the determinism contract extends to the
  // semi-synchronous model.
  const int n = 3;
  const auto build = [](SharedMemory& mem, FischerLock& lock) {
    std::vector<Program> programs;
    for (int i = 0; i < 3; ++i) {
      programs.emplace_back(
          [&lock](ProcCtx& ctx) { return mutex_worker(ctx, &lock, 2); });
    }
    (void)mem;
    return programs;
  };
  auto mem1 = make_dsm(n);
  FischerLock lock1(*mem1, 9);
  Simulation sim1(*mem1, build(*mem1, lock1));
  BoundedGapScheduler sched(4242, 6);
  ASSERT_TRUE(sim1.run(sched, 5'000'000).all_terminated);
  ASSERT_NE(std::count(sim1.schedule().begin(), sim1.schedule().end(),
                       kNoProc),
            0)
      << "expected recorded ticks in a timed run";

  auto mem2 = make_dsm(n);
  FischerLock lock2(*mem2, 9);
  Simulation sim2(*mem2, build(*mem2, lock2));
  ScriptedScheduler script(sim1.schedule());
  ASSERT_TRUE(sim2.run(script, 5'000'000).all_terminated);
  ASSERT_EQ(sim1.history().size(), sim2.history().size());
  for (std::size_t i = 0; i < sim1.history().size(); ++i) {
    const StepRecord& a = sim1.history().records()[i];
    const StepRecord& b = sim2.history().records()[i];
    ASSERT_EQ(a.proc, b.proc) << i;
    ASSERT_EQ(a.outcome.result, b.outcome.result) << i;
    ASSERT_EQ(a.outcome.rmr, b.outcome.rmr) << i;
  }
  EXPECT_EQ(sim1.now(), sim2.now());
}

TEST(Fischer, O1RmrsPerUncontendedPassage) {
  // Uncontended: acquire = read + write + read (+ delay, which is free),
  // release = write. The Section 3 cited result is about the contended
  // case; this just anchors the accounting.
  auto mem = make_dsm(2);
  FischerLock lock(*mem, 4);
  std::vector<Program> programs;
  programs.emplace_back(
      [&lock](ProcCtx& ctx) { return mutex_worker(ctx, &lock, 5); });
  programs.emplace_back(Program{});
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  ASSERT_TRUE(sim.run(rr, 100'000).all_terminated);
  EXPECT_LE(mem->ledger().rmrs(0), 5u * 4u);
  EXPECT_FALSE(check_mutual_exclusion(sim.history()).has_value());
}

}  // namespace
}  // namespace rmrsim
