// HistoryMode::kCountersOnly: the aggregate counters must agree exactly
// with a full-history run of the same deterministic schedule, the
// record-backed relations must refuse rather than lie, and the DPOR
// explorer must produce identical verdicts with the opt-in enabled.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "memory/shared_memory.h"
#include "metrics/publish.h"
#include "signaling/cc_flag.h"
#include "signaling/dsm_registration.h"
#include "signaling/workload.h"
#include "verify/dpor.h"

namespace rmrsim {
namespace {

SignalingRun run_workload(HistoryMode mode, std::uint64_t seed = 0) {
  SignalingWorkloadOptions opt;
  opt.n_waiters = 6;
  opt.signaler_idle_polls = 4;
  opt.scheduler_seed = seed;
  opt.history_mode = mode;
  return run_signaling_workload(
      make_dsm(opt.n_waiters + 1),
      [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); }, opt);
}

TEST(HistoryMode, CountersMatchFullHistoryExactly) {
  // Same deterministic schedule twice; every counter-backed query and the
  // ledger must be identical — the guarantee that lets publishers switch to
  // counters without perturbing artifacts.
  const SignalingRun full = run_workload(HistoryMode::kFull, 7);
  const SignalingRun counters = run_workload(HistoryMode::kCountersOnly, 7);
  const History& hf = full.sim->history();
  const History& hc = counters.sim->history();

  EXPECT_EQ(hf.size(), hc.size());
  EXPECT_EQ(hf.participants(), hc.participants());
  EXPECT_EQ(hf.finished(), hc.finished());
  EXPECT_EQ(hf.active(), hc.active());
  EXPECT_EQ(hf.total_rmrs(), hc.total_rmrs());
  EXPECT_EQ(hf.uses_ll_sc(), hc.uses_ll_sc());
  EXPECT_EQ(hf.crash_events(), hc.crash_events());
  EXPECT_EQ(hf.recovery_events(), hc.recovery_events());
  for (ProcId p = 0; p < full.sim->nprocs(); ++p) {
    EXPECT_EQ(hf.rmrs(p), hc.rmrs(p)) << "proc " << p;
    EXPECT_EQ(hf.mem_steps(p), hc.mem_steps(p)) << "proc " << p;
    EXPECT_EQ(hf.is_finished(p), hc.is_finished(p)) << "proc " << p;
  }
  EXPECT_EQ(full.mem->ledger().total_ops(), counters.mem->ledger().total_ops());
  EXPECT_EQ(full.mem->ledger().total_rmrs(),
            counters.mem->ledger().total_rmrs());

  // publish_history is counter-backed: both modes publish the same values.
  MetricsRegistry rf, rc;
  publish_history(rf, hf);
  publish_history(rc, hc);
  for (const char* m : {"history.steps", "history.participants",
                        "history.finished", "history.crashes",
                        "history.recoveries"}) {
    EXPECT_DOUBLE_EQ(rf.value(m), rc.value(m)) << m;
  }
}

TEST(HistoryMode, RecordBackedQueriesRefuseInCountersOnly) {
  const SignalingRun r = run_workload(HistoryMode::kCountersOnly);
  const History& h = r.sim->history();
  EXPECT_GT(h.size(), 0u);
  EXPECT_THROW(h.records(), std::logic_error);
  EXPECT_THROW(h.sees(0, 1), std::logic_error);
  EXPECT_THROW(h.is_regular(), std::logic_error);
  EXPECT_THROW(h.to_string(), std::logic_error);
}

TEST(HistoryMode, SetModeRequiresEmptyHistory) {
  History h;
  h.set_mode(HistoryMode::kCountersOnly);
  h.set_mode(HistoryMode::kFull);  // still empty: fine
  StepRecord rec;
  rec.proc = 0;
  h.append(std::move(rec));
  EXPECT_THROW(h.set_mode(HistoryMode::kCountersOnly), std::logic_error);
}

TEST(HistoryMode, DporVerdictIdenticalWithCountersOnly) {
  // The reduction's node accounting cannot depend on the recording mode
  // when the checker is counter-backed.
  const int waiters = 2;
  const ExploreBuilder build = [waiters]() {
    ExploreInstance inst;
    inst.mem = make_dsm(waiters + 1);
    std::shared_ptr<SignalingAlgorithm> alg =
        std::make_shared<DsmRegistrationSignal>(
            *inst.mem, static_cast<ProcId>(waiters));
    std::vector<Program> programs;
    for (int i = 0; i < waiters; ++i) {
      programs.emplace_back([a = alg.get()](ProcCtx& ctx) {
        return polling_waiter(ctx, a, /*max_polls=*/1);
      });
    }
    programs.emplace_back(
        [a = alg.get()](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
  const ExploreChecker check =
      [](const History& h) -> std::optional<std::string> {
    if (h.total_rmrs() > 1'000'000) return "absurd RMR count";
    return std::nullopt;
  };
  DporOptions opt;
  opt.max_depth = 20;
  const ExploreResult with_records = explore_dpor(build, check, opt);
  opt.counters_only_history = true;
  const ExploreResult counters = explore_dpor(build, check, opt);
  EXPECT_EQ(with_records.nodes_visited, counters.nodes_visited);
  EXPECT_EQ(with_records.complete_schedules, counters.complete_schedules);
  EXPECT_EQ(with_records.truncated_schedules, counters.truncated_schedules);
  EXPECT_EQ(with_records.exhausted, counters.exhausted);
  EXPECT_EQ(with_records.violation.has_value(), counters.violation.has_value());
}

}  // namespace
}  // namespace rmrsim
