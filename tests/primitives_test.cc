// Tests for the primitive constructions of Section 7 and Corollary 6.14:
// TAS leader election, the read/write CAS emulation, the transformed
// registration algorithm, and the blocking leader reduction.
#include <gtest/gtest.h>

#include "lowerbound/adversary.h"
#include "memory/shared_memory.h"
#include "primitives/blocking_leader.h"
#include "primitives/emulated_cas.h"
#include "primitives/leader_election.h"
#include "primitives/rw_cas_registration.h"
#include "sched/schedulers.h"
#include "signaling/checker.h"

namespace rmrsim {
namespace {

TEST(LeaderElection, ExactlyOneLeaderManySeeds) {
  for (const std::uint64_t seed : {1u, 9u, 77u, 4096u, 31337u}) {
    const int n = 8;
    auto mem = make_dsm(n);
    TasLeaderElection election(*mem);
    auto results = mem->allocate_global(0);  // unused; keep allocator warm
    (void)results;
    std::vector<Word> leader_of(n, -2);
    std::vector<Program> programs;
    for (int i = 0; i < n; ++i) {
      programs.emplace_back([&election, &leader_of](ProcCtx& ctx) -> ProcTask {
        const ProcId l = co_await election.elect(ctx);
        leader_of[static_cast<std::size_t>(ctx.id())] = l;
        // Second call must be free (cached locally) and agree.
        const ProcId l2 = co_await election.elect(ctx);
        ensure(l2 == l, "election changed its mind");
      });
    }
    Simulation sim(*mem, std::move(programs));
    RandomScheduler sched(seed);
    const auto result = sim.run(sched, 1'000'000);
    ASSERT_TRUE(result.all_terminated);
    for (int i = 1; i < n; ++i) EXPECT_EQ(leader_of[0], leader_of[i]);
    EXPECT_GE(leader_of[0], 0);
    EXPECT_LT(leader_of[0], n);
    // The winner is someone who actually ran.
  }
}

TEST(LeaderElection, RepeatCallsCostNoRmrs) {
  const int n = 4;
  auto mem = make_dsm(n);
  TasLeaderElection election(*mem);
  std::vector<Program> programs;
  for (int i = 0; i < n; ++i) {
    programs.emplace_back([&election](ProcCtx& ctx) -> ProcTask {
      for (int k = 0; k < 20; ++k) {
        co_await election.elect(ctx);
      }
    });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  ASSERT_TRUE(sim.run(rr, 1'000'000).all_terminated);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_LE(mem->ledger().rmrs(p), 4u) << "p" << p;  // election + cache fill
  }
}

TEST(EmulatedCas, LinearizesConcurrentCasWinners) {
  // n processes all CAS(nil -> id); exactly one must win, the rest observe a
  // consistent old value.
  for (const std::uint64_t seed : {5u, 50u, 500u}) {
    const int n = 6;
    auto mem = make_dsm(n);
    EmulatedCas target(*mem, -1);
    std::vector<Word> observed(n, -99);
    std::vector<Program> programs;
    for (int i = 0; i < n; ++i) {
      programs.emplace_back([&target, &observed](ProcCtx& ctx) -> ProcTask {
        const Word old = co_await target.cas(ctx, -1, ctx.id());
        observed[static_cast<std::size_t>(ctx.id())] = old;
      });
    }
    Simulation sim(*mem, std::move(programs));
    RandomScheduler sched(seed);
    ASSERT_TRUE(sim.run(sched, 5'000'000).all_terminated);
    int winners = 0;
    for (int i = 0; i < n; ++i) {
      if (observed[i] == -1) ++winners;
    }
    EXPECT_EQ(winners, 1);
  }
}

TEST(EmulatedCas, UsesOnlyReadsAndWrites) {
  const int n = 4;
  auto mem = make_dsm(n);
  EmulatedCas target(*mem, 0);
  std::vector<Program> programs;
  for (int i = 0; i < n; ++i) {
    programs.emplace_back([&target](ProcCtx& ctx) -> ProcTask {
      co_await target.cas(ctx, 0, 1);
      co_await target.read(ctx);
      co_await target.write(ctx, 7);
    });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  ASSERT_TRUE(sim.run(rr, 5'000'000).all_terminated);
  for (const StepRecord& r : sim.history().records()) {
    if (r.kind != StepRecord::Kind::kMemOp) continue;
    EXPECT_TRUE(r.op.type == OpType::kRead || r.op.type == OpType::kWrite)
        << to_string(r.op);
  }
}

TEST(RwCasRegistration, CorrectUnderRandomSchedules) {
  for (const std::uint64_t seed : {2u, 29u, 997u}) {
    const int n_waiters = 5;
    const int nprocs = n_waiters + 1;
    auto mem = make_dsm(nprocs);
    RwCasRegistrationSignal alg(*mem);
    std::vector<Program> programs;
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 100'000); });
    }
    programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
    Simulation sim(*mem, std::move(programs));
    RandomScheduler sched(seed);
    ASSERT_TRUE(sim.run(sched, 20'000'000).all_terminated);
    const auto v = check_polling_spec(sim.history());
    EXPECT_FALSE(v.has_value()) << v->what;
  }
}

TEST(RwCasRegistration, InTheoremScopeAndForcedByAdversary) {
  // Corollary 6.14, executable: after the transformation the algorithm uses
  // only reads and writes, so the strict construction applies — and forces
  // the super-constant amortized cost.
  AdversaryConfig c;
  c.nprocs = 32;
  c.construction = Construction::kStrict;
  SignalingAdversary adv(
      [](SharedMemory& m) {
        return std::make_unique<RwCasRegistrationSignal>(m);
      },
      c);
  const auto report = adv.run();
  EXPECT_TRUE(report.in_scope) << report.scope_note;
  EXPECT_FALSE(report.spec_violation) << report.violation_what;
  // Either waiters stabilized and the chase forced >= k signaler RMRs, or
  // the lock traffic keeps them unstable and amortized cost grows — both
  // demonstrate Theorem 6.2 on the transformed algorithm.
  if (report.stabilized) {
    EXPECT_GE(report.signaler_rmrs,
              static_cast<std::uint64_t>(report.stable_waiters));
  } else {
    EXPECT_TRUE(report.unstable_branch);
    EXPECT_GT(report.unstable_amortized_end, report.unstable_amortized_start);
  }
}

TEST(BlockingLeader, AllWaitersReleasedAfterSignal) {
  for (const std::uint64_t seed : {3u, 33u, 333u}) {
    const int n_waiters = 6;
    const int nprocs = n_waiters + 1;
    auto mem = make_dsm(nprocs);
    DsmBlockingLeaderSignal alg(*mem);
    std::vector<Program> programs;
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [&alg](ProcCtx& ctx) { return blocking_waiter(ctx, &alg); });
    }
    programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
    Simulation sim(*mem, std::move(programs));
    RandomScheduler sched(seed);
    const auto result = sim.run(sched, 20'000'000);
    ASSERT_TRUE(result.all_terminated) << "a waiter never woke up";
    const auto v = check_blocking_spec(sim.history());
    EXPECT_FALSE(v.has_value()) << v->what;
  }
}

TEST(BlockingLeader, NonLeaderWaitersPayO1Rmrs) {
  const int n_waiters = 12;
  const int nprocs = n_waiters + 1;
  auto mem = make_dsm(nprocs);
  DsmBlockingLeaderSignal alg(*mem);
  std::vector<Program> programs;
  for (int i = 0; i < n_waiters; ++i) {
    programs.emplace_back(
        [&alg](ProcCtx& ctx) { return blocking_waiter(ctx, &alg); });
  }
  programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  ASSERT_TRUE(sim.run(rr, 20'000'000).all_terminated);
  // Identify the leader (the process with the big sweep) and bound the rest.
  std::uint64_t max_rmrs = 0;
  ProcId leader = kNoProc;
  for (ProcId p = 0; p < n_waiters; ++p) {
    if (mem->ledger().rmrs(p) > max_rmrs) {
      max_rmrs = mem->ledger().rmrs(p);
      leader = p;
    }
  }
  for (ProcId p = 0; p < n_waiters; ++p) {
    if (p == leader) continue;
    EXPECT_LE(mem->ledger().rmrs(p), 5u) << "waiter p" << p;
  }
  EXPECT_LE(mem->ledger().rmrs(n_waiters), 3u) << "signaler";
}

}  // namespace
}  // namespace rmrsim
