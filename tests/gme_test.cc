// Group mutual exclusion tests: session safety under many interleavings,
// checker sharpness, batch concurrency, and starvation freedom of the
// session lock.
#include <gtest/gtest.h>

#include <memory>

#include "gme/session_gme.h"
#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "mutex/mcs_lock.h"
#include "mutex/ya_lock.h"
#include "sched/schedulers.h"

namespace rmrsim {
namespace {

struct GmeRun {
  std::unique_ptr<SharedMemory> mem;
  std::unique_ptr<GmeAlgorithm> alg;
  std::unique_ptr<Simulation> sim;
};

enum class Inner { kMcs, kYangAnderson };

GmeRun run_gme(std::unique_ptr<SharedMemory> mem, bool session_lock,
               Inner inner, int nprocs, int passages, int n_sessions,
               Scheduler& sched, int cs_dwell = 0) {
  GmeRun r;
  r.mem = std::move(mem);
  auto make_inner = [&]() -> std::unique_ptr<MutexAlgorithm> {
    if (inner == Inner::kMcs) return std::make_unique<McsLock>(*r.mem);
    return std::make_unique<YangAndersonLock>(*r.mem);
  };
  if (session_lock) {
    r.alg = std::make_unique<SessionGme>(*r.mem, make_inner());
  } else {
    r.alg = std::make_unique<MutexGme>(*r.mem, make_inner());
  }
  std::vector<Program> programs;
  GmeAlgorithm* alg = r.alg.get();
  for (int i = 0; i < nprocs; ++i) {
    // Process i requests sessions i%k, i%k+1, ... per passage: plenty of
    // both sharing and conflict.
    std::vector<Word> sessions;
    for (int j = 0; j < 3; ++j) sessions.push_back((i + j) % n_sessions);
    programs.emplace_back([alg, passages, sessions, cs_dwell](ProcCtx& ctx) {
      return gme_worker(ctx, alg, passages, sessions, cs_dwell);
    });
  }
  r.sim = std::make_unique<Simulation>(*r.mem, std::move(programs));
  const auto result = r.sim->run(sched, 100'000'000);
  EXPECT_TRUE(result.all_terminated) << "GME run did not complete";
  return r;
}

class GmeSafetySweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(GmeSafetySweep, SessionsNeverMix) {
  const int nprocs = std::get<0>(GetParam());
  const int n_sessions = std::get<1>(GetParam());
  const std::uint64_t seed = std::get<2>(GetParam());
  for (const bool session_lock : {true, false}) {
    for (const Inner inner : {Inner::kMcs, Inner::kYangAnderson}) {
      SCOPED_TRACE(session_lock ? "session-gme" : "mutex-gme");
      RandomScheduler sched(seed);
      auto r = run_gme(make_dsm(nprocs), session_lock, inner, nprocs, 3,
                       n_sessions, sched);
      const auto v = check_gme_safety(r.sim->history());
      EXPECT_FALSE(v.has_value()) << v->what << " @" << v->step_index;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GmeSafetySweep,
    ::testing::Combine(::testing::Values(2, 4, 8), ::testing::Values(2, 3),
                       ::testing::Values(7u, 1912u, 777777u)));

TEST(GmeChecker, ConvictsSessionMixing) {
  // Hand-built history: p0 enters session 0, p1 enters session 1 before p0
  // exits.
  History h;
  StepRecord r;
  r.kind = StepRecord::Kind::kEvent;
  r.event = EventKind::kCallEnd;
  r.code = calls::kGmeEnter;
  r.proc = 0;
  r.value = 0;
  h.append(r);
  r.proc = 1;
  r.value = 1;
  h.append(r);
  EXPECT_TRUE(check_gme_safety(h).has_value());
}

TEST(GmeConcurrency, SessionLockSharesTheRoomMutexDoesNot) {
  // All processes request the SAME session; the session lock should admit
  // them concurrently, the mutex baseline cannot.
  const int nprocs = 8;
  RoundRobinScheduler rr1;
  auto shared = run_gme(make_dsm(nprocs), /*session_lock=*/true, Inner::kMcs,
                        nprocs, 3, /*n_sessions=*/1, rr1, /*cs_dwell=*/40);
  RoundRobinScheduler rr2;
  auto mutexed = run_gme(make_dsm(nprocs), /*session_lock=*/false, Inner::kMcs,
                         nprocs, 3, /*n_sessions=*/1, rr2, /*cs_dwell=*/40);
  EXPECT_GT(max_cs_occupancy(shared.sim->history()), 1);
  EXPECT_EQ(max_cs_occupancy(mutexed.sim->history()), 1);
}

TEST(GmeConcurrency, TwoSessionBatchesForm) {
  // Two sessions alternating across processes: the session lock should
  // still extract > 1 occupancy via batching.
  const int nprocs = 8;
  RoundRobinScheduler rr;
  auto r = run_gme(make_dsm(nprocs), /*session_lock=*/true, Inner::kMcs,
                   nprocs, 4, /*n_sessions=*/2, rr, /*cs_dwell=*/40);
  EXPECT_GT(max_cs_occupancy(r.sim->history()), 1);
  EXPECT_FALSE(check_gme_safety(r.sim->history()).has_value());
}

TEST(GmeRmr, LocalSpinWaiting) {
  // Waiting processes spin in their own modules: RMRs per passage stay
  // bounded by O(inner mutex) + O(1), far below one per re-check.
  const int nprocs = 16;
  const int passages = 4;
  for (const bool cc : {false, true}) {
    RoundRobinScheduler rr;
    auto r = run_gme(cc ? make_cc(nprocs) : make_dsm(nprocs),
                     /*session_lock=*/true, Inner::kMcs, nprocs, passages, 2,
                     rr);
    const double per =
        static_cast<double>(r.mem->ledger().total_rmrs()) /
        static_cast<double>(nprocs * passages);
    EXPECT_LE(per, 40.0) << "cc=" << cc;
  }
}

TEST(GmeProgress, NoStarvationUnderContendedSessions) {
  // Every worker finishes all its passages even with adversarially mixed
  // sessions (queued requests gate the running session).
  const int nprocs = 6;
  for (const std::uint64_t seed : {123u, 456u, 789u}) {
    RandomScheduler sched(seed);
    auto r = run_gme(make_dsm(nprocs), /*session_lock=*/true,
                     Inner::kYangAnderson, nprocs, 5, 3, sched);
    // run_gme already asserts completion; double-check per-proc passages.
    for (ProcId p = 0; p < nprocs; ++p) {
      int exits = 0;
      for (const StepRecord& rec : r.sim->history().records()) {
        if (rec.proc == p && rec.kind == StepRecord::Kind::kEvent &&
            rec.event == EventKind::kCallEnd && rec.code == calls::kGmeExit) {
          ++exits;
        }
      }
      EXPECT_EQ(exits, 5) << "p" << p;
    }
  }
}

}  // namespace
}  // namespace rmrsim
